"""Essential-state generation: the worklist algorithm of Figure 3.

Starting from ``(Invalid+)`` the algorithm repeatedly expands a working
composite state, discards every successor *contained* in an already
known state and removes every known state contained in a new successor
(both directions of pruning are justified by the monotonicity results,
Lemmas 1-2 / Corollaries 1-2).  The surviving, fully expanded states are
the **essential states** (Definition 10); by Theorem 1 they symbolically
characterize every state an exhaustive enumeration could ever reach, for
any number of caches.

The implementation instruments every step so the paper's quantitative
claims can be reproduced:

* ``stats.visits`` counts generated states -- the quantity the paper
  reports as "22 state visits" for the Illinois protocol;
* an optional :class:`TraceEntry` log records each visit with its
  disposition, regenerating the Appendix A.2 listing;
* a discovery archive keeps predecessor links for counterexample
  (:class:`~repro.core.errors.Witness`) extraction, even across pruning.

Pruning is selectable (:class:`PruningMode`) so the ablation experiment
E8 can quantify the value of containment over exact-duplicate detection.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from ..obs import active as _active_collector
from ..obs import clock
from . import covering
from .composite import CompositeState
from .covering import contains
from .errors import (
    Violation,
    Witness,
    check_data_consistency,
    check_patterns,
)
from .expansion import SymbolicExpander, SymbolicTransition
from .protocol import ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    # The guard lives in the engine layer (above core); explore() only
    # relies on its check() protocol, so no runtime import is needed
    # and the core -> engine dependency stays a typing artifact.  The
    # liveness report likewise lives above core and is only attached
    # here, never constructed.
    from ..engine.guard import Exhaustion, Guard
    from ..liveness.model import LivenessReport

__all__ = [
    "PruningMode",
    "Disposition",
    "TraceEntry",
    "ExpansionStats",
    "ExpansionResult",
    "ExpansionLimitError",
    "explore",
    "essential_home",
]


class ExpansionLimitError(Exception):
    """The expansion exceeded its visit budget without converging."""


class PruningMode(str, enum.Enum):
    """How redundant composite states are pruned during expansion."""

    #: Only exact duplicates are dropped (no use of Definition 9).
    DUPLICATES = "duplicates"
    #: Full containment pruning as in Figure 3.
    CONTAINMENT = "containment"


class Disposition(str, enum.Enum):
    """What happened to one generated state."""

    NEW = "new"
    DUPLICATE = "duplicate"
    CONTAINED = "contained"
    SUPERSEDES = "supersedes"


@dataclass(frozen=True)
class TraceEntry:
    """One expansion step, in the style of the Appendix A.2 listing."""

    source: CompositeState
    label: str
    target: CompositeState
    disposition: Disposition

    def render(self) -> str:
        """Multi-line human-readable rendering."""
        mark = {
            Disposition.NEW: "",
            Disposition.DUPLICATE: "  (already known)",
            Disposition.CONTAINED: "  (contained, discarded)",
            Disposition.SUPERSEDES: "  (supersedes earlier states)",
        }[self.disposition]
        return (
            f"{self.source.pretty(annotations=False)} --{self.label}--> "
            f"{self.target.pretty(annotations=False)}{mark}"
        )


@dataclass
class ExpansionStats:
    """Instrumentation counters for one expansion run."""

    #: States generated during expansion (the paper's "state visits").
    visits: int = 0
    #: Working states popped and (at least partially) expanded.
    expanded: int = 0
    #: Generated states discarded because contained in a known state.
    discarded_contained: int = 0
    #: Known states removed because contained in a new state.
    removed_superseded: int = 0
    #: Exact duplicates dropped.
    duplicates: int = 0
    #: Scenario case-splits evaluated.
    scenarios: int = 0
    #: Peak size of the working list.
    max_worklist: int = 0
    #: Wall-clock seconds.
    elapsed: float = 0.0


@dataclass
class ExpansionResult:
    """Everything produced by one run of :func:`explore`."""

    spec: ProtocolSpec
    augmented: bool
    pruning: PruningMode
    initial: CompositeState
    essential: tuple[CompositeState, ...]
    transitions: tuple[SymbolicTransition, ...]
    stats: ExpansionStats
    violations: tuple[Violation, ...]
    witnesses: tuple[Witness, ...]
    trace: tuple[TraceEntry, ...] = field(default_factory=tuple)
    #: True when a guard budget expired before the fixpoint: the
    #: essential set is a sound *prefix* (every listed state is
    #: reachable) but may be incomplete, and ``transitions`` is empty.
    partial: bool = False
    #: Why the run stopped early (``None`` for complete runs).
    exhausted: "Exhaustion | None" = None
    #: Unexplored working states at the moment the budget expired
    #: (first entry: the state whose expansion was interrupted).
    frontier: tuple[CompositeState, ...] = field(default_factory=tuple)
    #: Liveness verdict attached by the liveness post-pass
    #: (:func:`repro.liveness.analyze_liveness`); ``None`` when the
    #: verification ran in safety-only mode.
    liveness: "LivenessReport | None" = None

    @property
    def ok(self) -> bool:
        """True iff the protocol is *proven* correct: the expansion ran
        to its fixpoint, no erroneous state is reachable, and (when the
        liveness pass ran) no pending request can starve.  A partial
        run is never ``ok`` -- unvisited states could still be
        erroneous -- though any violations it did find are definitive.
        """
        return (
            not self.violations
            and not self.partial
            and (self.liveness is None or not self.liveness.violations)
        )

    @property
    def live(self) -> bool | None:
        """Liveness verdict: ``True``/``False`` when the liveness pass
        ran to a conclusion, ``None`` when it did not run (safety mode)
        or was inconclusive (partial expansion)."""
        if self.liveness is None or not self.liveness.checked:
            return None
        return not self.liveness.violations

    def essential_by_render(self) -> dict[str, CompositeState]:
        """Map from pretty-rendering to state, for report lookups."""
        return {s.pretty(): s for s in self.essential}

    def summary(self) -> str:
        """One-paragraph textual summary of the verification run."""
        if self.violations:
            verdict = f"FAILED ({len(self.violations)} violations)"
        elif self.liveness is not None and self.liveness.violations:
            verdict = (
                f"NOT LIVE ({len(self.liveness.violations)} starvable "
                "requests)"
            )
        elif self.partial:
            reason = self.exhausted.reason if self.exhausted else "budget"
            verdict = (
                f"PARTIAL ({reason}; {len(self.frontier)} frontier states "
                "unexplored)"
            )
        else:
            verdict = "VERIFIED"
        return (
            f"{self.spec.full_name or self.spec.name}: {verdict}; "
            f"{len(self.essential)} essential states, "
            f"{self.stats.visits} state visits, "
            f"{len(self.transitions)} global transitions"
        )


def _check_state(
    state: CompositeState, spec: ProtocolSpec, augmented: bool
) -> list[Violation]:
    """All violations exhibited by one composite state."""
    violations = check_patterns(state, spec.error_patterns)
    if augmented:
        violations.extend(check_data_consistency(state, spec.invalid))
    return violations


def _witness_for(
    state: CompositeState,
    violations: Sequence[Violation],
    discovery: dict[CompositeState, tuple[CompositeState, str] | None],
) -> Witness:
    """Reconstruct the path from the initial state to *state*."""
    steps: list[tuple[CompositeState, str]] = []
    cursor: CompositeState | None = state
    while cursor is not None:
        entry = discovery[cursor]
        if entry is None:
            break
        pred, label = entry
        steps.append((pred, label))
        cursor = pred
    steps.reverse()
    return Witness(tuple(steps), state, tuple(violations))


def explore(
    spec: ProtocolSpec,
    *,
    augmented: bool = True,
    pruning: PruningMode = PruningMode.CONTAINMENT,
    max_visits: int = 1_000_000,
    keep_trace: bool = False,
    stop_on_error: bool = False,
    on_state: Callable[[CompositeState], None] | None = None,
    guard: "Guard | None" = None,
) -> ExpansionResult:
    """Run the Figure 3 algorithm to its fixpoint.

    Parameters
    ----------
    spec:
        The protocol to expand.
    augmented:
        Track ``cdata``/``mdata`` context variables (Definition 4) and
        run the data-consistency checks of Definition 3.
    pruning:
        Containment pruning (the paper's algorithm) or plain duplicate
        detection (ablation baseline).
    max_visits:
        Budget on generated states; exceeding it raises
        :class:`ExpansionLimitError`.  Ignored when ``guard`` is given
        (the guard owns every budget and degrades gracefully instead
        of raising).
    keep_trace:
        Record a :class:`TraceEntry` per generated state (Appendix A.2).
    stop_on_error:
        Stop at the first erroneous state instead of exploring fully.
    on_state:
        Optional callback invoked for every newly retained state.
    guard:
        Optional :class:`repro.engine.guard.Guard` polled once per
        generated state.  When a budget expires the run stops cleanly
        and returns a **partial** result (``partial=True``) carrying
        the essential-set-so-far, the unexplored frontier and the
        exhaustion reason -- it never raises.
    """
    expander = SymbolicExpander(spec, augmented=augmented)
    stats = ExpansionStats()
    started = clock.monotonic()

    # Observability: `coll` is None on uninstrumented runs, and every
    # instrumentation site below hides behind that one local check --
    # the disabled path stays as hot as it ever was.
    coll = _active_collector()
    if coll is not None:
        root_span = coll.span(
            "expand",
            protocol=spec.name,
            pruning=pruning.value,
            augmented=augmented,
        )
        root_span.__enter__()
        prune_span = f"prune.{pruning.value}"

    initial = expander.initial_state()
    working: list[CompositeState] = [initial]
    visited: list[CompositeState] = []
    discovery: dict[CompositeState, tuple[CompositeState, str] | None] = {
        initial: None
    }
    trace: list[TraceEntry] = []
    violations: list[Violation] = []
    witnesses: list[Witness] = []
    reported: set[CompositeState] = set()

    def record_error(state: CompositeState) -> bool:
        """Check and record violations; returns True when found."""
        if state in reported:
            return False
        found = _check_state(state, spec, augmented)
        if found:
            reported.add(state)
            violations.extend(found)
            witnesses.append(_witness_for(state, found, discovery))
            return True
        return False

    record_error(initial)

    stop = False
    exhausted: "Exhaustion | None" = None
    try:
        if coll is not None:
            covering.set_probe(
                lambda hit: coll.count(
                    "covering.contains.hits" if hit else "covering.contains.misses"
                )
            )
        while working and not stop and exhausted is None:
            stats.max_worklist = max(stats.max_worklist, len(working))
            current = working.pop(0)
            stats.expanded += 1
            discard_current = False
            if coll is not None:
                coll.observe("expand.worklist.depth", len(working) + 1)
                step_span = coll.span("expand.step", worklist=len(working) + 1)
                step_span.__enter__()

            for transition in expander.successors(current):
                stats.visits += 1
                if guard is not None:
                    exhausted = guard.check(
                        visits=stats.visits,
                        states=len(working) + len(visited) + 1,
                    )
                    if exhausted is not None:
                        break
                elif stats.visits > max_visits:
                    raise ExpansionLimitError(
                        f"{spec.name}: exceeded {max_visits} state visits "
                        f"(pruning={pruning.value})"
                    )
                target = transition.target
                if target not in discovery:
                    discovery[target] = (current, str(transition.label))

                if coll is not None:
                    witness_started = coll.now()
                if record_error(target) and stop_on_error:
                    stop = True
                if coll is not None:
                    coll.add_span("witness.check", witness_started)
                    prune_started = coll.now()

                if pruning is PruningMode.CONTAINMENT:
                    if (
                        contains(target, current)
                        or any(contains(target, p) for p in working)
                        or any(contains(target, q) for q in visited)
                    ):
                        stats.discarded_contained += 1
                        disposition = (
                            Disposition.DUPLICATE
                            if target == current
                            or target in working
                            or target in visited
                            else Disposition.CONTAINED
                        )
                    else:
                        before = len(working) + len(visited)
                        working = [p for p in working if not contains(p, target)]
                        visited = [q for q in visited if not contains(q, target)]
                        removed = before - len(working) - len(visited)
                        stats.removed_superseded += removed
                        working.append(target)
                        if on_state is not None:
                            on_state(target)
                        disposition = (
                            Disposition.SUPERSEDES if removed else Disposition.NEW
                        )
                        if contains(current, target):
                            # Figure 3: "if (A ⊆ A') then discard A and
                            # terminate all FOR loops starting a new run."
                            discard_current = True
                else:  # PruningMode.DUPLICATES
                    if target == current or target in working or target in visited:
                        stats.duplicates += 1
                        disposition = Disposition.DUPLICATE
                    else:
                        working.append(target)
                        if on_state is not None:
                            on_state(target)
                        disposition = Disposition.NEW
                if coll is not None:
                    coll.add_span(
                        prune_span, prune_started, disposition=disposition.value
                    )
                if keep_trace:
                    trace.append(
                        TraceEntry(current, str(transition.label), target, disposition)
                    )
                if discard_current or stop:
                    break

            if coll is not None:
                step_span.__exit__(None, None, None)
            if not discard_current and not stop and exhausted is None:
                # (On an early stop or an exhausted budget the current
                # state is only partially expanded, so it must not
                # masquerade as essential.)
                visited.append(current)
            elif exhausted is not None:
                # The interrupted state heads the unexplored frontier.
                working.insert(0, current)

        stats.scenarios = expander.scenarios_evaluated
        essential = tuple(visited)

        # Final pass: edges of the global transition diagram between the
        # essential states (every successor of an essential state is, by
        # the pruning invariant, contained in some essential state).
        # Skipped on partial runs: the invariant only holds at fixpoint.
        if coll is not None:
            edges_started = coll.now()
        edges: dict[tuple[CompositeState, str, CompositeState], SymbolicTransition] = {}
        if not stop and exhausted is None:
            for source in essential:
                for transition in expander.successors(source):
                    home = essential_home(transition.target, essential, pruning)
                    key = (source, str(transition.label), home)
                    if key not in edges:
                        edges[key] = SymbolicTransition(source, transition.label, home)
        if coll is not None:
            coll.add_span("expand.edges", edges_started, transitions=len(edges))
    finally:
        if coll is not None:
            covering.set_probe(None)
            root_span.__exit__(None, None, None)

    stats.elapsed = clock.monotonic() - started
    if coll is not None:
        coll.count("expand.visits", stats.visits)
        coll.count("expand.expanded", stats.expanded)
        coll.count("expand.pruned.contained", stats.discarded_contained)
        coll.count("expand.pruned.superseded", stats.removed_superseded)
        coll.count("expand.pruned.duplicate", stats.duplicates)
        coll.count("expand.scenarios", stats.scenarios)
        coll.gauge("expand.worklist.peak", stats.max_worklist)
        root_span.set(
            essential=len(essential),
            visits=stats.visits,
            partial=exhausted is not None,
        )
    return ExpansionResult(
        spec=spec,
        augmented=augmented,
        pruning=pruning,
        initial=initial,
        essential=essential,
        transitions=tuple(edges.values()),
        stats=stats,
        violations=tuple(violations),
        witnesses=tuple(witnesses),
        trace=tuple(trace),
        partial=exhausted is not None,
        exhausted=exhausted,
        frontier=tuple(working) if exhausted is not None else (),
    )


def essential_home(
    state: CompositeState,
    essential: Sequence[CompositeState],
    pruning: PruningMode,
) -> CompositeState:
    """The essential state containing *state* (itself if listed).

    Public because the liveness analysis (:mod:`repro.liveness`) uses
    the same covering map to close its product graph over the essential
    set.
    """
    if pruning is PruningMode.DUPLICATES:
        for candidate in essential:
            if candidate == state:
                return candidate
        raise AssertionError(
            f"state {state} not found among visited states (duplicates mode)"
        )
    for candidate in essential:
        if contains(state, candidate):
            return candidate
    raise AssertionError(
        f"successor {state} of an essential state is contained in no "
        "essential state; the pruning invariant is broken"
    )
