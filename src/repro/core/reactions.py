"""Protocol reaction model: what one operation does to the whole system.

A cache coherence protocol (Section 2.3 of the paper) is specified per
*initiating* cache: given the initiator's current FSM state, the
operation (read / write / replacement) and what the initiator can
observe about the rest of the system (the :class:`Ctx`), the protocol
produces an :class:`Outcome` describing

* the initiator's next state,
* where the initiator's data comes from on a miss (:class:`LoadFrom`),
* how every other cache holding a copy reacts (:class:`ObserverReaction`
  per observer FSM state -- snooping protocols react uniformly per
  state, which is what makes class-wise symbolic expansion possible),
* whether and from where main memory is written.

The same :class:`Outcome` drives three engines: the symbolic expansion
(:mod:`repro.core.expansion`), the concrete product-machine enumeration
(:mod:`repro.enumeration.product`) and the executable multiprocessor
simulator (:mod:`repro.simulator`), guaranteeing that all three agree on
protocol semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from .symbols import CountCase

__all__ = [
    "INITIATOR",
    "LoadFrom",
    "MEMORY",
    "from_cache",
    "ObserverReaction",
    "Outcome",
    "Ctx",
    "stay",
    "stall",
]

#: Sentinel naming the initiating cache as a write-back source.
INITIATOR = "@initiator"


@dataclass(frozen=True)
class LoadFrom:
    """Source of the block data loaded by the initiator on a miss."""

    kind: str  # "memory" or "cache"
    symbol: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("memory", "cache"):
            raise ValueError(f"bad load source kind: {self.kind}")
        if (self.kind == "cache") != (self.symbol is not None):
            raise ValueError("cache sources need a symbol; memory must not have one")

    def __str__(self) -> str:
        return "memory" if self.kind == "memory" else f"cache[{self.symbol}]"


#: The block is supplied by main memory.
MEMORY = LoadFrom("memory")


def from_cache(symbol: str) -> LoadFrom:
    """The block is supplied cache-to-cache by a cache in *symbol*."""
    return LoadFrom("cache", symbol)


@dataclass(frozen=True)
class ObserverReaction:
    """Reaction of every (other) cache currently in one FSM state.

    ``next_state`` is the observer's state after snooping the bus
    transaction.  ``updated`` marks write-update protocols: on a store,
    the observer's copy receives the newly written value (stays fresh)
    instead of silently going stale.
    """

    next_state: str
    updated: bool = False


def stay(state: str) -> ObserverReaction:
    """Convenience: observer keeps its state (and is not updated)."""
    return ObserverReaction(state)


def stall(state: str) -> "Outcome":
    """Convenience: the operation is refused; the system is unchanged.

    Used by blocking protocols (locked states): the initiator stays in
    *state*, no data moves, and the operation is conceptually retried
    after the blocker releases the block.
    """
    return Outcome(state, stalled=True)


@dataclass(frozen=True)
class Outcome:
    """Complete effect of one operation by one cache.

    ``observers`` is keyed by observer FSM state; states without an entry
    are unaffected.  ``writeback_from`` names the FSM state of the cache
    that writes its copy back to memory during the transaction (or
    :data:`INITIATOR`); ``write_through`` means the *newly stored* value
    is propagated to memory as part of a write.
    """

    next_state: str
    load_from: LoadFrom | None = None
    observers: Mapping[str, ObserverReaction] = field(default_factory=dict)
    writeback_from: str | None = None
    write_through: bool = False
    #: The operation was refused and will be retried later: nothing at
    #: all happens (used to model blocking on locked blocks).
    stalled: bool = False

    def __post_init__(self) -> None:
        # Freeze the observer mapping so outcomes are safely shareable.
        object.__setattr__(self, "observers", MappingProxyType(dict(self.observers)))
        if self.stalled and (
            self.load_from is not None
            or self.observers
            or self.writeback_from is not None
            or self.write_through
        ):
            raise ValueError("a stalled outcome must have no side effects")

    def observer_for(self, state: str) -> ObserverReaction:
        """Reaction of observers in *state* (defaults to no change)."""
        reaction = self.observers.get(state)
        return reaction if reaction is not None else ObserverReaction(state)


@dataclass(frozen=True)
class Ctx:
    """What the initiating cache observes about the other caches.

    ``present`` is the set of FSM states (excluding the protocol's
    invalid state) held by at least one *other* cache; ``copies`` is the
    abstract number of valid copies held by other caches.  In the
    symbolic engine both fields are made definite by scenario
    case-splitting; in the concrete engines they are computed exactly.

    This is precisely the information exposed by real snooping hardware:
    the bus "shared"/"owned" response lines (the paper's
    *sharing-detection* function) plus which cache answers the request.
    """

    present: frozenset[str] = frozenset()
    copies: CountCase = CountCase.ZERO

    @property
    def any_copy(self) -> bool:
        """True iff at least one other cache holds a valid copy.

        This is the value of the sharing-detection function ``f_i``
        (Section 2.1) from the initiator's perspective.
        """
        return self.copies.is_present

    def has(self, *symbols: str) -> bool:
        """True iff another cache is in any of the given FSM states."""
        return any(sym in self.present for sym in symbols)
