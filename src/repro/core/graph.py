"""Global transition diagrams (paper Figure 4).

Builds the protocol's global FSM over the essential composite states as
a :mod:`networkx` multigraph, renders it as DOT (for graphviz) and as a
deterministic ASCII adjacency listing for terminals and tests.
"""

from __future__ import annotations

import networkx as nx

from .essential import ExpansionResult

__all__ = ["build_graph", "to_dot", "ascii_diagram"]


def build_graph(result: ExpansionResult) -> "nx.MultiDiGraph":
    """The global transition diagram as a networkx multigraph.

    Nodes are essential states (keyed by their pretty rendering, with
    the :class:`~repro.core.composite.CompositeState` attached as the
    ``state`` attribute and annotations as node attributes); edges carry
    the transition label (e.g. ``W_shared``).
    """
    graph = nx.MultiDiGraph(
        protocol=result.spec.name,
        augmented=result.augmented,
        initial=result.initial.pretty(),
    )
    for state in result.essential:
        graph.add_node(
            state.pretty(),
            state=state,
            structure=state.pretty(annotations=False),
            sharing=state.sharing.value if state.sharing is not None else None,
            mdata=state.mdata.value if state.mdata is not None else None,
            initial=(state == result.initial),
        )
    for transition in result.transitions:
        graph.add_edge(
            transition.source.pretty(),
            transition.target.pretty(),
            label=str(transition.label),
            op=transition.label.op.value,
            initiator=transition.label.initiator,
        )
    return graph


def to_dot(result: ExpansionResult) -> str:
    """Graphviz DOT rendering of the global transition diagram.

    Self-contained (no pydot dependency); edge labels match the paper's
    Figure 4 notation.
    """
    lines = [
        f'digraph "{result.spec.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="Helvetica"];',
    ]
    index = {state: f"s{i}" for i, state in enumerate(result.essential)}
    for state, node_id in index.items():
        shape = "doubleoctagon" if state == result.initial else "box"
        label = state.pretty().replace('"', r"\"")
        lines.append(f'  {node_id} [label="{label}", shape={shape}];')
    # Merge parallel edges between the same pair into one label.
    merged: dict[tuple[str, str], list[str]] = {}
    for t in result.transitions:
        key = (index[t.source], index[t.target])
        merged.setdefault(key, []).append(str(t.label))
    for (src, dst), labels in sorted(merged.items()):
        text = ", ".join(sorted(set(labels)))
        lines.append(f'  {src} -> {dst} [label="{text}"];')
    lines.append("}")
    return "\n".join(lines)


def ascii_diagram(result: ExpansionResult) -> str:
    """Deterministic adjacency listing of the global diagram."""
    order = {state: i for i, state in enumerate(result.essential)}
    lines = [f"Global transition diagram: {result.spec.full_name or result.spec.name}"]
    for state in result.essential:
        prefix = "->" if state == result.initial else "  "
        lines.append(f"{prefix} s{order[state]}: {state.pretty()}")
        outgoing = sorted(
            (t for t in result.transitions if t.source == state),
            key=lambda t: (str(t.label), order[t.target]),
        )
        for t in outgoing:
            lines.append(f"       --{t.label}--> s{order[t.target]}")
    return "\n".join(lines)
