"""High-level verification API.

:func:`verify` is the one-call entry point a protocol designer uses:
give it a protocol (or its registry name) and it runs the symbolic
expansion with context variables, evaluates every erroneous-state
condition, and returns a :class:`VerificationReport` with the verdict,
the essential states, the global transition diagram and -- when the
protocol is broken -- counterexample paths from the initial state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .errors import Violation, Witness
from .essential import ExpansionResult, PruningMode, explore
from .graph import ascii_diagram
from .protocol import ProtocolSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.guard import Guard
    from ..lint.model import LintReport
    from ..liveness.model import LivenessReport

__all__ = ["VerificationReport", "verify"]


@dataclass
class VerificationReport:
    """Human-oriented wrapper around an :class:`ExpansionResult`."""

    result: ExpansionResult
    #: Static-analysis findings collected by the ``preflight`` option
    #: (``None`` when verification ran without a preflight).
    lint: "LintReport | None" = None

    @property
    def ok(self) -> bool:
        """True iff the protocol satisfies all correctness conditions.

        In liveness modes this includes deadlock freedom: a safety-clean
        protocol with a starvable request is not ``ok``.
        """
        return self.result.ok

    @property
    def liveness(self) -> "LivenessReport | None":
        """Liveness verdict (``None`` for safety-only verifications)."""
        return self.result.liveness

    @property
    def partial(self) -> bool:
        """True iff a guard budget expired before the fixpoint."""
        return self.result.partial

    @property
    def spec(self) -> ProtocolSpec:
        """The verified protocol specification."""
        return self.result.spec

    @property
    def violations(self) -> tuple[Violation, ...]:
        """Coherence violations recorded so far."""
        return self.result.violations

    @property
    def witnesses(self) -> tuple[Witness, ...]:
        """Counterexample paths for every erroneous state found."""
        return self.result.witnesses

    def render(self, *, diagram: bool = True, max_witnesses: int = 3) -> str:
        """Full multi-line report: verdict, states, diagram, witnesses."""
        res = self.result
        live = res.liveness
        starved = live is not None and bool(live.violations)
        if self.ok:
            verdict = "VERIFIED -- no erroneous state is reachable"
            if live is not None and live.checked:
                verdict += "; every pending request is eventually served"
        elif res.partial and not res.violations:
            why = res.exhausted.describe() if res.exhausted else "budget exhausted"
            verdict = (
                f"PARTIAL -- {why}; no erroneous state found in the "
                f"explored prefix ({len(res.frontier)} frontier states "
                "unexplored)"
            )
        elif res.violations:
            verdict = "FAILED -- erroneous states are reachable"
        else:
            verdict = (
                "NOT LIVE -- a pending request can be stalled forever"
            )
        lines = [
            "=" * 72,
            f"Verification of {res.spec.full_name or res.spec.name}",
            "=" * 72,
            res.spec.describe(),
            "",
            f"Verdict: {verdict}",
            f"Essential states: {len(res.essential)}    "
            f"state visits: {res.stats.visits}    "
            f"elapsed: {res.stats.elapsed*1000:.1f} ms",
        ]
        if live is not None:
            lines.append(live.summary())
        lines.append("")
        if diagram:
            lines.append(ascii_diagram(res))
            lines.append("")
        if res.violations:
            lines.append(f"Violations ({len(res.violations)}):")
            for violation in res.violations:
                lines.append(f"  - {violation}")
            lines.append("")
            for witness in res.witnesses[:max_witnesses]:
                lines.append("Counterexample:")
                lines.append(witness.render())
                lines.append("")
            if len(res.witnesses) > max_witnesses:
                lines.append(
                    f"... and {len(res.witnesses) - max_witnesses} further "
                    "counterexamples omitted."
                )
        if starved:
            assert live is not None
            lines.append(f"Starvable requests ({len(live.violations)}):")
            for violation in live.violations:
                lines.append(f"  - {violation}")
            lines.append("")
            for lasso in live.lassos[:max_witnesses]:
                lines.append("Lasso counterexample:")
                lines.append(lasso.render())
                lines.append("")
            if len(live.lassos) > max_witnesses:
                lines.append(
                    f"... and {len(live.lassos) - max_witnesses} further "
                    "lassos omitted."
                )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.result.summary()


def verify(
    protocol: ProtocolSpec | str,
    *,
    augmented: bool = True,
    pruning: PruningMode = PruningMode.CONTAINMENT,
    max_visits: int = 1_000_000,
    stop_on_error: bool = False,
    validate_spec: bool = True,
    preflight: str = "off",
    guard: "Guard | None" = None,
    backend: str = "interp",
    mode: str = "safety",
) -> VerificationReport:
    """Verify a protocol; the library's main entry point.

    ``protocol`` may be a :class:`~repro.core.protocol.ProtocolSpec`
    instance or a registry name such as ``"illinois"``.

    ``preflight`` runs the static analyzer (:mod:`repro.lint`) before
    the expansion: ``"reject"`` raises
    :class:`~repro.lint.model.LintError` when an error-severity rule
    fires, ``"annotate"`` only attaches the findings to the returned
    report's ``lint`` field, ``"off"`` (the default) skips the
    analysis entirely.

    ``guard`` bounds the expansion with a cooperative
    :class:`~repro.engine.guard.Guard`: an exhausted budget yields a
    *partial* report (``report.partial``) instead of raising, and
    ``max_visits`` is ignored in favour of the guard's own budgets.

    ``backend`` selects the expansion engine: ``"interp"`` (the
    default) runs the symbolic interpreter, ``"kernel"`` the compiled
    kernel (:mod:`repro.kernel`), which produces identical verdicts,
    violations, witnesses and essential sets.  A spec the kernel
    cannot compile (no IR lowering) silently falls back to the
    interpreter; see ``docs/KERNEL.md``.

    ``mode`` selects what is checked: ``"safety"`` (the default) runs
    the paper's reachability checks only; ``"liveness"`` and ``"both"``
    additionally run the starvation analysis (:mod:`repro.liveness`)
    over the completed expansion and attach its verdict -- including
    lasso-shaped counterexamples -- to ``result.liveness``.  The
    expansion itself is identical in every mode (safety violations are
    inherent to it), so ``"liveness"`` and ``"both"`` differ only in
    name; both are accepted for symmetry with the batch engine.  See
    ``docs/LIVENESS.md``.
    """
    if preflight not in ("off", "reject", "annotate"):
        raise ValueError(
            f"preflight must be 'off', 'reject' or 'annotate', "
            f"not {preflight!r}"
        )
    if backend not in ("interp", "kernel"):
        raise ValueError(
            f"backend must be 'interp' or 'kernel', not {backend!r}"
        )
    if mode not in ("safety", "liveness", "both"):
        raise ValueError(
            f"mode must be 'safety', 'liveness' or 'both', not {mode!r}"
        )
    if isinstance(protocol, str):
        # Imported lazily: the registry lives above the core package.
        from ..protocols.registry import get_protocol

        spec = get_protocol(protocol)
    else:
        spec = protocol
    lint_report = None
    if preflight != "off":
        # Imported lazily: the linter lives above the core package.
        from ..lint import LintError, lint_spec

        lint_report = lint_spec(spec)
        if preflight == "reject" and not lint_report.ok:
            raise LintError(lint_report)
    if validate_spec:
        spec.validate()
    expand = explore
    if backend == "kernel":
        # Imported lazily: the kernel lives above the core package.
        from ..kernel import KernelUnsupportedError, compile_protocol
        from ..kernel import explore as kernel_explore

        try:
            compile_protocol(spec)
        except KernelUnsupportedError:
            expand = explore  # fall back to the interpreter
        else:
            expand = kernel_explore
    result = expand(
        spec,
        augmented=augmented,
        pruning=pruning,
        max_visits=max_visits,
        stop_on_error=stop_on_error,
        guard=guard,
    )
    if mode != "safety":
        # Imported lazily: the liveness pass lives above the core
        # package.  It is backend-agnostic -- it consumes the decoded
        # ExpansionResult, so interpreter and kernel runs get the same
        # verdict by construction.
        from ..liveness import analyze_liveness

        result.liveness = analyze_liveness(result)
    return VerificationReport(result, lint=lint_report)
