"""JSON serialization of verification results.

Makes expansion results consumable by external tooling (dashboards,
regression trackers, graph viewers): states, transitions, statistics,
violations and witnesses are rendered into plain JSON-compatible
dictionaries.  The representation is stable and documented here; it is
covered by round-trip tests for the state layer.
"""

from __future__ import annotations

import json
from typing import Any

from .composite import CompositeState, Label, make_state
from .errors import Violation, Witness
from .essential import ExpansionResult
from .operators import Rep
from .symbols import DataValue, SharingLevel

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "result_to_dict",
    "result_to_json",
]


def state_to_dict(state: CompositeState) -> dict[str, Any]:
    """Plain-dict form of a composite state (lossless)."""
    return {
        "classes": [
            {
                "symbol": label.symbol,
                "data": label.data.value if label.data is not None else None,
                "rep": rep.value,
            }
            for label, rep in state.classes
        ],
        "sharing": state.sharing.value if state.sharing is not None else None,
        "mdata": state.mdata.value if state.mdata is not None else None,
        "pretty": state.pretty(),
    }


def state_from_dict(payload: dict[str, Any]) -> CompositeState:
    """Inverse of :func:`state_to_dict`."""
    pieces = [
        (
            Label(
                entry["symbol"],
                DataValue(entry["data"]) if entry["data"] is not None else None,
            ),
            Rep(entry["rep"]),
        )
        for entry in payload["classes"]
    ]
    return make_state(
        pieces,
        sharing=(
            SharingLevel(payload["sharing"]) if payload["sharing"] is not None else None
        ),
        mdata=DataValue(payload["mdata"]) if payload["mdata"] is not None else None,
    )


def _violation_to_dict(violation: Violation) -> dict[str, Any]:
    return {
        "kind": violation.kind.value,
        "message": violation.message,
        "state": violation.state.pretty() if violation.state is not None else None,
    }


def _witness_to_dict(witness: Witness) -> dict[str, Any]:
    return {
        "steps": [
            {"state": state.pretty(), "label": label}
            for state, label in witness.steps
        ],
        "final": witness.final.pretty(),
        "violations": [_violation_to_dict(v) for v in witness.violations],
    }


def result_to_dict(result: ExpansionResult) -> dict[str, Any]:
    """Plain-dict form of a full verification result."""
    index = {state: i for i, state in enumerate(result.essential)}
    return {
        "protocol": result.spec.name,
        "full_name": result.spec.full_name,
        "augmented": result.augmented,
        "pruning": result.pruning.value,
        "verified": result.ok,
        "initial": index.get(result.initial),
        "essential_states": [state_to_dict(s) for s in result.essential],
        "transitions": [
            {
                "source": index[t.source],
                "label": str(t.label),
                "op": t.label.op.value,
                "initiator": t.label.initiator,
                "target": index[t.target],
            }
            for t in result.transitions
        ],
        "stats": {
            "visits": result.stats.visits,
            "expanded": result.stats.expanded,
            "discarded_contained": result.stats.discarded_contained,
            "removed_superseded": result.stats.removed_superseded,
            "scenarios": result.stats.scenarios,
            "max_worklist": result.stats.max_worklist,
            "elapsed_seconds": result.stats.elapsed,
        },
        "violations": [_violation_to_dict(v) for v in result.violations],
        "witnesses": [_witness_to_dict(w) for w in result.witnesses],
    }


def result_to_json(result: ExpansionResult, *, indent: int = 2) -> str:
    """JSON text form of a full verification result."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=False)
