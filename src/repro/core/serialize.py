"""JSON serialization of verification results and specifications.

Makes expansion results consumable by external tooling (dashboards,
regression trackers, graph viewers): states, transitions, statistics,
violations and witnesses are rendered into plain JSON-compatible
dictionaries.  The representation is stable and documented here; it is
covered by round-trip tests for the state layer.

Every emitted collection is deterministically ordered -- class pieces
by label, transitions by (source, label, target), JSON keys sorted --
so two runs of the same verification produce byte-identical payloads.
The batch engine (:mod:`repro.engine`) relies on this: golden files,
spec fingerprints and cache keys are all hashes of this output.

:func:`spec_to_dict` additionally renders a *protocol specification*
itself into a canonical behavioural table (every reaction over a
deterministic sample of observation contexts), which is what
:func:`repro.engine.fingerprint.spec_fingerprint` hashes.
"""

from __future__ import annotations

import itertools
import json
from typing import Any

from .composite import CompositeState, Label, make_state
from .errors import Violation, Witness
from .essential import ExpansionResult
from .operators import Rep
from .protocol import ProtocolSpec
from .reactions import Ctx, Outcome
from .symbols import CountCase, DataValue, SharingLevel

__all__ = [
    "state_to_dict",
    "state_from_dict",
    "result_to_dict",
    "result_to_json",
    "outcome_to_dict",
    "spec_to_dict",
]


def state_to_dict(state: CompositeState) -> dict[str, Any]:
    """Plain-dict form of a composite state (lossless).

    Class pieces are emitted sorted by ``(symbol, data)`` so the output
    is stable regardless of how the state was constructed.
    """
    ordered = sorted(state.classes, key=lambda piece: piece[0].sort_key)
    return {
        "classes": [
            {
                "symbol": label.symbol,
                "data": label.data.value if label.data is not None else None,
                "rep": rep.value,
            }
            for label, rep in ordered
        ],
        "sharing": state.sharing.value if state.sharing is not None else None,
        "mdata": state.mdata.value if state.mdata is not None else None,
        "pretty": state.pretty(),
    }


def state_from_dict(payload: dict[str, Any]) -> CompositeState:
    """Inverse of :func:`state_to_dict`."""
    pieces = [
        (
            Label(
                entry["symbol"],
                DataValue(entry["data"]) if entry["data"] is not None else None,
            ),
            Rep(entry["rep"]),
        )
        for entry in payload["classes"]
    ]
    return make_state(
        pieces,
        sharing=(
            SharingLevel(payload["sharing"]) if payload["sharing"] is not None else None
        ),
        mdata=DataValue(payload["mdata"]) if payload["mdata"] is not None else None,
    )


def _violation_to_dict(violation: Violation) -> dict[str, Any]:
    return {
        "kind": violation.kind.value,
        "message": violation.message,
        "state": violation.state.pretty() if violation.state is not None else None,
    }


def _witness_to_dict(witness: Witness) -> dict[str, Any]:
    return {
        "steps": [
            {"state": state.pretty(), "label": label}
            for state, label in witness.steps
        ],
        "final": witness.final.pretty(),
        "violations": [_violation_to_dict(v) for v in witness.violations],
    }


def result_to_dict(result: ExpansionResult) -> dict[str, Any]:
    """Plain-dict form of a full verification result.

    Transitions are sorted by ``(source, label, target)`` so the
    payload does not depend on worklist scheduling or dict insertion
    order; repeated runs of the same verification are byte-identical
    (modulo the wall-clock ``elapsed_seconds`` stat).

    Partial results (a guard budget expired before the fixpoint) gain
    one extra ``"partial"`` key carrying the exhaustion reason and the
    unexplored frontier; results of a liveness-mode verification gain a
    ``"liveness"`` key carrying the verdict and its lasso witnesses.
    Complete safety-mode results serialize exactly as before, so
    goldens and fingerprint substrates are unaffected.
    """
    index = {state: i for i, state in enumerate(result.essential)}
    transitions = sorted(
        (
            {
                "source": index[t.source],
                "label": str(t.label),
                "op": t.label.op.value,
                "initiator": t.label.initiator,
                "target": index[t.target],
            }
            for t in result.transitions
        ),
        key=lambda t: (t["source"], t["label"], t["target"]),
    )
    payload: dict[str, Any] = {
        "protocol": result.spec.name,
        "full_name": result.spec.full_name,
        "augmented": result.augmented,
        "pruning": result.pruning.value,
        "verified": result.ok,
        "initial": index.get(result.initial),
        "essential_states": [state_to_dict(s) for s in result.essential],
        "transitions": transitions,
        "stats": {
            "visits": result.stats.visits,
            "expanded": result.stats.expanded,
            "discarded_contained": result.stats.discarded_contained,
            "removed_superseded": result.stats.removed_superseded,
            "scenarios": result.stats.scenarios,
            "max_worklist": result.stats.max_worklist,
            "elapsed_seconds": result.stats.elapsed,
        },
        "violations": [_violation_to_dict(v) for v in result.violations],
        "witnesses": [_witness_to_dict(w) for w in result.witnesses],
    }
    if result.partial:
        payload["partial"] = {
            **(result.exhausted.to_dict() if result.exhausted is not None else {}),
            "frontier": [state_to_dict(s) for s in result.frontier],
        }
    if result.liveness is not None:
        payload["liveness"] = result.liveness.to_dict()
    return payload


def result_to_json(result: ExpansionResult, *, indent: int = 2) -> str:
    """JSON text form of a full verification result (sorted keys)."""
    return json.dumps(result_to_dict(result), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Specification serialization (the fingerprint substrate)
# ----------------------------------------------------------------------
def outcome_to_dict(outcome: Outcome) -> dict[str, Any]:
    """Plain-dict form of one protocol reaction outcome.

    Observer reactions are emitted sorted by observer state so the
    representation is canonical.
    """
    return {
        "next": outcome.next_state,
        "stalled": outcome.stalled,
        "load": str(outcome.load_from) if outcome.load_from is not None else None,
        "observers": [
            {"state": state, "next": reaction.next_state, "updated": reaction.updated}
            for state, reaction in sorted(outcome.observers.items())
        ],
        "writeback": outcome.writeback_from,
        "write_through": outcome.write_through,
    }


def _sample_contexts(valid: tuple[str, ...]) -> list[Ctx]:
    """Deterministic sample of observation contexts for *valid* states.

    The empty context, every singleton with ONE and MANY copies, and
    every two- and three-state combination with MANY copies -- a strict
    superset of what :meth:`ProtocolSpec.validate` exercises, covering
    every context shape the symbolic expander can construct for the
    shipped protocol zoo.
    """
    ordered = sorted(valid)
    contexts = [Ctx(frozenset(), CountCase.ZERO)]
    for sym in ordered:
        contexts.append(Ctx(frozenset({sym}), CountCase.ONE))
        contexts.append(Ctx(frozenset({sym}), CountCase.MANY))
    for size in (2, 3):
        for combo in itertools.combinations(ordered, size):
            contexts.append(Ctx(frozenset(combo), CountCase.MANY))
    return contexts


def spec_to_dict(spec: ProtocolSpec) -> dict[str, Any]:
    """Canonical behavioural rendering of a protocol specification.

    Tabulates :meth:`ProtocolSpec.react` over every state, operation
    and sampled context in a deterministic order, alongside the
    structural attributes (states, error patterns, characteristic
    function).  Two specifications with the same rendering behave
    identically on every scenario the verifier can pose, which is what
    makes the rendering a sound substrate for content-addressed result
    caching (see :mod:`repro.engine.fingerprint`).

    A reaction that raises is recorded (exception type name) rather
    than propagated, so even pathological specifications fingerprint
    deterministically.
    """
    reactions: list[dict[str, Any]] = []
    contexts = _sample_contexts(spec.valid_states())
    for state in spec.states:
        for op in spec.operations:
            if not spec.applicable(state, op):
                reactions.append(
                    {"state": state, "op": op.value, "applicable": False}
                )
                continue
            for ctx in contexts:
                try:
                    entry: dict[str, Any] = {
                        "outcome": outcome_to_dict(spec.react(state, op, ctx))
                    }
                except Exception as exc:  # noqa: BLE001 - recorded, not raised
                    entry = {"raises": type(exc).__name__}
                reactions.append(
                    {
                        "state": state,
                        "op": op.value,
                        "ctx": {
                            "present": sorted(ctx.present),
                            "copies": ctx.copies.value,
                        },
                        **entry,
                    }
                )
    return {
        "name": spec.name,
        "full_name": spec.full_name,
        "states": list(spec.states),
        "invalid": spec.invalid,
        "sharing_detection": spec.uses_sharing_detection,
        "operations": [op.value for op in spec.operations],
        "error_patterns": [pattern.describe() for pattern in spec.error_patterns],
        "owner_states": list(spec.owner_states),
        "exclusive_states": list(spec.exclusive_states),
        "shared_fill_state": spec.shared_fill_state,
        "reactions": reactions,
    }
