"""Symbolic verification engine for cache coherence protocols.

Implements the methodology of Pong & Dubois (SPAA 1993): composite
states with repetition operators, structural covering and containment,
symbolic state-space expansion to essential states, and data-consistency
checking through context variables.
"""

from .composite import CompositeState, Label, make_state, parse_class_spec
from .covering import contains, is_essential_among, structurally_covers
from .errors import (
    ErrorKind,
    ForbidMultiple,
    ForbidState,
    ForbidTogether,
    StatePattern,
    Violation,
    Witness,
)
from .essential import (
    Disposition,
    ExpansionLimitError,
    ExpansionResult,
    ExpansionStats,
    PruningMode,
    TraceEntry,
    explore,
)
from .expansion import SymbolicExpander, SymbolicTransition, TransitionLabel
from .graph import ascii_diagram, build_graph, to_dot
from .operators import Rep, aggregate, leq, remove_one
from .protocol import ProtocolDefinitionError, ProtocolSpec
from .serialize import result_to_dict, result_to_json, state_from_dict, state_to_dict
from .reactions import (
    INITIATOR,
    Ctx,
    LoadFrom,
    MEMORY,
    ObserverReaction,
    Outcome,
    from_cache,
    stay,
)
from .symbols import CountCase, DataValue, Op, SharingLevel
from .verifier import VerificationReport, verify

__all__ = [
    "CompositeState",
    "CountCase",
    "Ctx",
    "DataValue",
    "Disposition",
    "ErrorKind",
    "ExpansionLimitError",
    "ExpansionResult",
    "ExpansionStats",
    "ForbidMultiple",
    "ForbidState",
    "ForbidTogether",
    "INITIATOR",
    "Label",
    "LoadFrom",
    "MEMORY",
    "ObserverReaction",
    "Op",
    "Outcome",
    "ProtocolDefinitionError",
    "ProtocolSpec",
    "PruningMode",
    "Rep",
    "SharingLevel",
    "StatePattern",
    "SymbolicExpander",
    "SymbolicTransition",
    "TraceEntry",
    "TransitionLabel",
    "VerificationReport",
    "Violation",
    "Witness",
    "aggregate",
    "ascii_diagram",
    "build_graph",
    "contains",
    "explore",
    "from_cache",
    "is_essential_among",
    "leq",
    "make_state",
    "parse_class_spec",
    "remove_one",
    "result_to_dict",
    "result_to_json",
    "state_from_dict",
    "state_to_dict",
    "stay",
    "structurally_covers",
    "to_dot",
    "verify",
]
