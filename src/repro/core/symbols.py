"""Fundamental symbol types shared across the verification engine.

This module defines the small closed vocabularies used everywhere else:

* :class:`Op` -- the processor-initiated operations of the paper's FSM
  model (``Σ = {R, W, Rep}``, Section 2.3).
* :class:`DataValue` -- the context-variable domain for cached data,
  ``cdata ∈ {nodata, fresh, obsolete}`` (Section 2.4, Definition 4).
* :class:`SharingLevel` -- the three-valued abstraction of the
  sharing-detection characteristic function (Appendix A.1 calls these
  *v1*, *v2* and *v3*): no cached copy, exactly one cached copy, two or
  more cached copies.
* :class:`CountCase` -- the conditioned count of a cache-state class used
  when the symbolic expansion case-splits an ambiguous ``+``/``*`` class.
"""

from __future__ import annotations

import enum

__all__ = [
    "Op",
    "DataValue",
    "SharingLevel",
    "CountCase",
    "MANY_THRESHOLD",
]

#: Number of copies at which :attr:`SharingLevel.MANY` starts.
MANY_THRESHOLD = 2


class Op(str, enum.Enum):
    """A processor-initiated operation on a cache block.

    The paper's operation set is ``Σ = {R, W, Rep}`` (read, write,
    replacement).  Figure 4 abbreviates replacement as ``Z``; we keep that
    abbreviation in the string value so rendered transition labels match
    the paper.

    ``LOCK``/``UNLOCK`` extend ``Σ`` for the "protocols with locked
    states" the paper's conclusion points to; ordinary protocols simply
    do not include them in their operation alphabet.
    """

    READ = "R"
    WRITE = "W"
    REPLACE = "Z"
    LOCK = "L"
    UNLOCK = "U"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class DataValue(str, enum.Enum):
    """Value of a context variable attached to a cache or memory copy.

    ``cdata`` ranges over all three members; ``mdata`` (the memory copy)
    only ever takes :attr:`FRESH` or :attr:`OBSOLETE` (Section 2.4).
    """

    #: The cache holds no copy of the block at all.
    NODATA = "nodata"
    #: The copy holds the value written by the most recent STORE.
    FRESH = "fresh"
    #: The copy holds a value older than the most recent STORE.
    OBSOLETE = "obsolete"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class SharingLevel(str, enum.Enum):
    """Abstract number of valid cached copies in the whole system.

    This is the information content of the sharing-detection
    characteristic function ``F``: Appendix A.1 shows that for such
    protocols only three classes of ``F``-values exist -- *v1* (no cached
    copy), *v2* (exactly one) and *v3* (two or more).  A composite state
    of a sharing-detection protocol carries one :class:`SharingLevel` and
    two structurally identical composite states with different levels are
    distinct (this is how the paper distinguishes ``(Shared+, Inv*)``
    from ``(Shared, Inv+)``).
    """

    NONE = "none"  # v1: no valid cached copy anywhere
    ONE = "one"  # v2: exactly one valid cached copy
    MANY = "many"  # v3: two or more valid cached copies

    @staticmethod
    def from_count(count: int) -> "SharingLevel":
        """Classify an exact copy count into a sharing level."""
        if count < 0:
            raise ValueError(f"negative copy count: {count}")
        if count == 0:
            return SharingLevel.NONE
        if count == 1:
            return SharingLevel.ONE
        return SharingLevel.MANY

    def as_interval(self) -> tuple[int, int | None]:
        """Return the (min, max) copy counts of this level; ``None`` = ∞."""
        if self is SharingLevel.NONE:
            return (0, 0)
        if self is SharingLevel.ONE:
            return (1, 1)
        return (MANY_THRESHOLD, None)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class CountCase(str, enum.Enum):
    """Conditioned count of one cache-state class inside a scenario.

    When the symbolic expansion picks an initiator it must know, for each
    remaining class, whether the class is empty and (for
    sharing-detection protocols) whether it holds one or several members.
    Ambiguous classes (operators ``+``/``*``) are case-split into
    members of this enum:

    * sharing-detection protocols split into ``ZERO | ONE | MANY`` so the
      successor's :class:`SharingLevel` is always definite;
    * null-``F`` protocols split into ``ZERO | SOME`` (``SOME`` = at
      least one, exact multiplicity irrelevant).
    """

    ZERO = "0"
    ONE = "1"
    MANY = "2+"
    SOME = "1+"

    @property
    def min_count(self) -> int:
        """Smallest concrete count consistent with this case."""
        return {"0": 0, "1": 1, "2+": 2, "1+": 1}[self.value]

    @property
    def max_count(self) -> int | None:
        """Largest concrete count consistent with this case (None = ∞)."""
        return {"0": 0, "1": 1, "2+": None, "1+": None}[self.value]

    @property
    def is_present(self) -> bool:
        """True if the class certainly has at least one member."""
        return self is not CountCase.ZERO

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
