"""Repetition operators and their algebra (paper Definition 6, Section 3.2.3).

A composite state groups the caches holding the same FSM state into a
*class* annotated with a repetition operator:

* ``1`` (:attr:`Rep.ONE`)  -- exactly one cache is in the state;
* ``+`` (:attr:`Rep.PLUS`) -- at least one cache is in the state;
* ``*`` (:attr:`Rep.STAR`) -- zero or more caches are in the state;
* ``0`` (:attr:`Rep.ZERO`) -- no cache is in the state (footnote 3 adds
  this operator "for completeness"; in canonical composite states the
  class is simply absent).

Every operator denotes a set of concrete cache counts, conveniently
represented as an integer interval whose upper bound may be infinite.
The information order ``1 < + < *`` and ``0 < *`` of Section 3.2.2 is
exactly subset inclusion of those count sets, and the paper's
*aggregation* rules (Section 3.2.3, rule 1) are interval addition
followed by weakening to the coarsest operator that covers the sum:

>>> aggregate(Rep.ONE, Rep.ONE) is Rep.PLUS        # (q, q) ≡ q+
True
>>> aggregate(Rep.STAR, Rep.STAR) is Rep.STAR      # (q*, q*) ≡ q*
True
>>> aggregate(Rep.ZERO, Rep.PLUS) is Rep.PLUS      # (q0, q+) ≡ q+
True

The weakening step at ``(1,1)+(1,1)=(2,2) → +`` is where counting
precision is deliberately abandoned -- Section 4 explains that the
extra "two or more" information is carried by the value of the
characteristic function, not by the operator.
"""

from __future__ import annotations

import enum
from typing import Iterable

from .symbols import CountCase

__all__ = [
    "Rep",
    "Interval",
    "interval_of",
    "rep_from_interval",
    "interval_add",
    "interval_sum",
    "leq",
    "aggregate",
    "remove_one",
    "count_cases",
    "conditioned_rep",
]

#: An integer interval ``(lo, hi)``; ``hi is None`` means unbounded.
Interval = tuple[int, "int | None"]


class Rep(str, enum.Enum):
    """A repetition operator annotating one cache-state class."""

    ZERO = "0"
    ONE = "1"
    PLUS = "+"
    STAR = "*"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def min_count(self) -> int:
        """Smallest cache count the operator admits."""
        return interval_of(self)[0]

    @property
    def max_count(self) -> int | None:
        """Largest cache count the operator admits (``None`` = ∞)."""
        return interval_of(self)[1]

    @property
    def may_be_empty(self) -> bool:
        """True if the class may contain no cache at all."""
        return self.min_count == 0

    @property
    def may_be_present(self) -> bool:
        """True if the class may contain at least one cache."""
        hi = self.max_count
        return hi is None or hi >= 1


_INTERVALS: dict[Rep, Interval] = {
    Rep.ZERO: (0, 0),
    Rep.ONE: (1, 1),
    Rep.PLUS: (1, None),
    Rep.STAR: (0, None),
}


def interval_of(rep: Rep) -> Interval:
    """Return the count interval denoted by *rep*."""
    return _INTERVALS[rep]


def rep_from_interval(lo: int, hi: int | None) -> Rep:
    """Weakest (most precise representable) operator covering ``[lo, hi]``.

    The operator vocabulary cannot express arbitrary intervals, so the
    result is the *strongest* operator whose interval is a superset of
    ``[lo, hi]`` -- e.g. ``[2, 2]`` weakens to ``+`` (at least one), which
    is precisely the paper's aggregation rule ``(q, q) ≡ q+``.
    """
    if lo < 0:
        raise ValueError(f"negative lower bound: {lo}")
    if hi is not None and hi < lo:
        raise ValueError(f"empty interval: [{lo}, {hi}]")
    if hi == 0:
        return Rep.ZERO
    if lo == 1 and hi == 1:
        return Rep.ONE
    if lo >= 1:
        return Rep.PLUS
    return Rep.STAR


def interval_add(a: Interval, b: Interval) -> Interval:
    """Add two count intervals (``None`` upper bounds are absorbing)."""
    lo = a[0] + b[0]
    hi = None if (a[1] is None or b[1] is None) else a[1] + b[1]
    return (lo, hi)


def interval_sum(intervals: Iterable[Interval]) -> Interval:
    """Sum an iterable of count intervals."""
    total: Interval = (0, 0)
    for iv in intervals:
        total = interval_add(total, iv)
    return total


#: Information order of Section 3.2.2: r1 ≤ r2 iff counts(r1) ⊆ counts(r2).
_LEQ: frozenset[tuple[Rep, Rep]] = frozenset(
    {
        (Rep.ZERO, Rep.ZERO),
        (Rep.ZERO, Rep.STAR),
        (Rep.ONE, Rep.ONE),
        (Rep.ONE, Rep.PLUS),
        (Rep.ONE, Rep.STAR),
        (Rep.PLUS, Rep.PLUS),
        (Rep.PLUS, Rep.STAR),
        (Rep.STAR, Rep.STAR),
    }
)


def leq(r1: Rep, r2: Rep) -> bool:
    """Return True iff ``r1 ≤ r2`` in the information order.

    ``q^{r1}`` is *weaker* than ``q^{r2}`` when every count admitted by
    ``r1`` is also admitted by ``r2`` (``1 < + < *`` and ``0 < *``).
    """
    return (r1, r2) in _LEQ


def aggregate(r1: Rep, r2: Rep) -> Rep:
    """Merge two classes of the same state symbol (aggregation rules).

    Implemented as interval addition followed by
    :func:`rep_from_interval`; reproduces every rule of Section 3.2.3
    rule 1 and extends them consistently to all operator pairs.
    """
    lo, hi = interval_add(interval_of(r1), interval_of(r2))
    return rep_from_interval(lo, hi)


def remove_one(rep: Rep) -> Rep:
    """Operator left after one member of the class becomes the initiator.

    * ``1``  → ``0`` (the only member left the class)
    * ``+``  → ``*`` (at least one before, zero or more after)
    * ``*``  → ``*`` (initiating presumes a member existed; the rest is
      still "zero or more")
    """
    if rep is Rep.ZERO:
        raise ValueError("cannot remove a member from an empty class")
    if rep is Rep.ONE:
        return Rep.ZERO
    return Rep.STAR


def count_cases(rep: Rep, *, sharing: bool) -> tuple[CountCase, ...]:
    """Conditioned count cases for scenario enumeration.

    Sharing-detection protocols need ``{0, 1, ≥2}`` granularity so that
    the successor's sharing level is definite; null-``F`` protocols only
    need presence/absence (``{0, ≥1}``).
    Definite operators yield a single case.
    """
    if rep is Rep.ZERO:
        return (CountCase.ZERO,)
    if rep is Rep.ONE:
        return (CountCase.ONE,)
    if sharing:
        if rep is Rep.PLUS:
            return (CountCase.ONE, CountCase.MANY)
        return (CountCase.ZERO, CountCase.ONE, CountCase.MANY)
    if rep is Rep.PLUS:
        return (CountCase.SOME,)
    return (CountCase.ZERO, CountCase.SOME)


def conditioned_rep(case: CountCase) -> Rep:
    """Repetition operator representing a class conditioned to *case*."""
    return {
        CountCase.ZERO: Rep.ZERO,
        CountCase.ONE: Rep.ONE,
        CountCase.MANY: Rep.PLUS,
        CountCase.SOME: Rep.PLUS,
    }[case]
