"""Symbolic successor generation (paper Section 3.2.3).

Given a composite state, this module produces every composite state
reachable in one protocol operation.  The paper's expansion rules are
realized as follows:

* **Coincident transitions** (rule 2): every observer class reacts as a
  whole to the initiator's bus transaction, keeping its (conditioned)
  repetition operator.
* **One-step transitions** (rule 3): the initiator is split off its
  class (``1 → 0``, ``+ → *``, ``* → *``) and contributes a fresh
  singleton piece; aggregation re-merges pieces landing on the same
  class.
* **N-steps transitions** (rule 4): emerge from iterating single steps
  under containment pruning -- each intermediate state of an N-steps
  chain is contained in the chain's source or produces the terminal
  state in one further step (see DESIGN.md §4).

Because ``+``/``*`` operators leave the concrete class size ambiguous,
each expansion *case-splits* the environment into **scenarios**: every
ambiguous valid class is conditioned to a definite
:class:`~repro.core.symbols.CountCase`, filtered for consistency against
the state's sharing annotation.  This keeps the initiator's view
(:class:`~repro.core.reactions.Ctx`) and the successor's sharing level
definite, which is what lets containment (Definition 9) compare
characteristic-function values exactly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from .composite import CompositeState, Label, make_state
from .operators import (
    Interval,
    Rep,
    conditioned_rep,
    count_cases,
    interval_sum,
    remove_one,
)
from .protocol import ProtocolSpec
from .reactions import Ctx, INITIATOR, Outcome
from .semantics import (
    initiator_data_after,
    is_store,
    memory_after_store,
    memory_after_writeback,
    observer_data_after,
)
from .symbols import CountCase, DataValue, Op, SharingLevel

__all__ = [
    "TransitionLabel",
    "SymbolicTransition",
    "ReactionEvent",
    "SymbolicExpander",
    "ExpansionSemanticsError",
]


class ExpansionSemanticsError(Exception):
    """The expansion produced a state the abstraction cannot classify."""


@dataclass(frozen=True)
class TransitionLabel:
    """Label of a global transition, e.g. ``W_shared``.

    Matches the paper's Figure 4 notation: the operation letter with the
    initiator's pre-transition state as a subscript.
    """

    op: Op
    initiator: str

    def __str__(self) -> str:
        return f"{self.op.value}_{self.initiator.lower()}"


@dataclass(frozen=True)
class SymbolicTransition:
    """One edge of the global (symbolic) transition system."""

    source: CompositeState
    label: TransitionLabel
    target: CompositeState

    def __str__(self) -> str:
        return f"{self.source.pretty()} --{self.label}--> {self.target.pretty()}"


#: Environment representation: the source state minus one initiator.
_Env = tuple[tuple[Label, Rep], ...]


@dataclass(frozen=True)
class ReactionEvent:
    """One fully resolved reaction of a composite state.

    Where :meth:`SymbolicExpander.successors` collapses everything into
    labelled edges, an event keeps the pieces apart -- which initiator
    class reacted, under which observation context, with which
    :class:`~repro.core.reactions.Outcome` -- so analyses that need the
    *semantics* of a step (the liveness pass chief among them: who
    stalled, how observers move) can consume the expansion without
    re-deriving scenario splitting.  ``targets`` are the raw successor
    states (the source state itself for a stalled outcome).
    """

    initiator: str
    op: Op
    ctx: Ctx
    outcome: Outcome
    targets: tuple[CompositeState, ...]

    @property
    def label(self) -> TransitionLabel:
        """The global-transition label this event contributes to."""
        return TransitionLabel(self.op, self.initiator)


def _classify_interval(interval: Interval) -> CountCase:
    """Abstract an exact copy-count interval into a :class:`CountCase`."""
    lo, hi = interval
    if hi == 0:
        return CountCase.ZERO
    if lo == 1 and hi == 1:
        return CountCase.ONE
    if lo >= 2:
        return CountCase.MANY
    return CountCase.SOME


def _intervals_intersect(a: Interval, b: Interval) -> bool:
    """Whether two count intervals share at least one value."""
    lo = max(a[0], b[0])
    if a[1] is None:
        return b[1] is None or b[1] >= lo
    if b[1] is None:
        return a[1] >= lo
    return min(a[1], b[1]) >= lo


class SymbolicExpander:
    """Produces symbolic successors of composite states for one protocol.

    ``augmented=True`` (the default) tracks the ``cdata``/``mdata``
    context variables of Definition 4 alongside the structure, enabling
    the data-consistency check; ``augmented=False`` expands the bare
    structure, which is what Sections 3.1-3.2 of the paper analyse.
    """

    def __init__(self, spec: ProtocolSpec, *, augmented: bool = True) -> None:
        self.spec = spec
        self.augmented = augmented
        self.sharing = spec.uses_sharing_detection
        #: Number of scenario evaluations performed (instrumentation).
        self.scenarios_evaluated = 0

    # ------------------------------------------------------------------
    def initial_state(self) -> CompositeState:
        """The paper's initial state: every cache Invalid, memory fresh.

        Rendered ``(Invalid+)`` -- an arbitrary positive number of caches,
        none holding a copy.
        """
        data = DataValue.NODATA if self.augmented else None
        return make_state(
            [(Label(self.spec.invalid, data), Rep.PLUS)],
            sharing=SharingLevel.NONE if self.sharing else None,
            mdata=DataValue.FRESH if self.augmented else None,
        )

    # ------------------------------------------------------------------
    def successors(self, state: CompositeState) -> list[SymbolicTransition]:
        """All one-operation symbolic successors of *state*.

        Iterates over every initiator class, every applicable operation
        and every consistent scenario; duplicate ``(label, target)``
        pairs are collapsed.
        """
        results: dict[tuple[TransitionLabel, CompositeState], SymbolicTransition] = {}
        for idx, (init_label, _init_rep) in enumerate(state.classes):
            init_sym = init_label.symbol
            for op in self.spec.operations:
                if not self.spec.applicable(init_sym, op):
                    continue
                env = self._remove_initiator(state.classes, idx)
                for cases in self._scenarios(state, init_sym, env):
                    ctx = self._make_ctx(env, cases)
                    outcome = self.spec.react(init_sym, op, ctx)
                    label = TransitionLabel(op, init_sym)
                    for succ in self._build_successors(
                        state, init_label, op, env, cases, outcome
                    ):
                        key = (label, succ)
                        if key not in results:
                            results[key] = SymbolicTransition(state, label, succ)
        return list(results.values())

    # ------------------------------------------------------------------
    def reaction_events(self, state: CompositeState) -> list[ReactionEvent]:
        """Every (initiator, operation, scenario) reaction of *state*.

        The deterministic flat scan behind :meth:`successors`: initiator
        classes in state order, operations in specification order,
        scenarios in case-split order.  Stalled outcomes are included
        (their ``targets`` is the unchanged source state), which is what
        the liveness analysis walks to find stall cycles.
        """
        events: list[ReactionEvent] = []
        for idx, (init_label, _init_rep) in enumerate(state.classes):
            init_sym = init_label.symbol
            for op in self.spec.operations:
                if not self.spec.applicable(init_sym, op):
                    continue
                env = self._remove_initiator(state.classes, idx)
                for cases in self._scenarios(state, init_sym, env):
                    ctx = self._make_ctx(env, cases)
                    outcome = self.spec.react(init_sym, op, ctx)
                    targets = tuple(
                        self._build_successors(
                            state, init_label, op, env, cases, outcome
                        )
                    )
                    events.append(
                        ReactionEvent(init_sym, op, ctx, outcome, targets)
                    )
        return events

    def observation_contexts(
        self, state: CompositeState, initiator: str
    ) -> list[Ctx]:
        """Every consistent context a cache in *initiator* sees at *state*.

        When *initiator* labels a class of *state* the cache is split
        off that class exactly as :meth:`successors` does; otherwise
        (the liveness product tracks a blocked cache whose symbol may
        have been merged away) the whole state is taken as the
        environment -- a sound over-approximation of what the extra
        cache can observe.
        """
        contexts: list[Ctx] = []
        seen: set[Ctx] = set()
        class_indices = [
            i
            for i, (label, _rep) in enumerate(state.classes)
            if label.symbol == initiator
        ] or [None]
        for idx in class_indices:
            env = (
                self._remove_initiator(state.classes, idx)
                if idx is not None
                else tuple(state.classes)
            )
            for cases in self._scenarios(state, initiator, env):
                ctx = self._make_ctx(env, cases)
                if ctx not in seen:
                    seen.add(ctx)
                    contexts.append(ctx)
        return contexts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _remove_initiator(
        classes: Sequence[tuple[Label, Rep]], idx: int
    ) -> _Env:
        """Split one member off class *idx* (``1→0``, ``+→*``, ``*→*``)."""
        env: list[tuple[Label, Rep]] = []
        for i, (label, rep) in enumerate(classes):
            new_rep = remove_one(rep) if i == idx else rep
            if new_rep is not Rep.ZERO:
                env.append((label, new_rep))
        return tuple(env)

    def _scenarios(
        self, state: CompositeState, init_sym: str, env: _Env
    ) -> Iterable[dict[int, CountCase]]:
        """Enumerate consistent conditionings of the ambiguous classes.

        Only classes in a valid (non-invalid) FSM state are split; the
        invalid class holds no copies and never influences guards or
        sharing levels.  In sharing-detection mode each candidate is
        filtered against the state's stored sharing level: the total
        pre-transition copy count (initiator included) must be
        achievable.
        """
        invalid = self.spec.invalid
        valid_idx = [i for i, (lbl, _) in enumerate(env) if lbl.symbol != invalid]
        options = [count_cases(env[i][1], sharing=self.sharing) for i in valid_idx]
        init_copy = 0 if init_sym == invalid else 1
        for combo in itertools.product(*options):
            self.scenarios_evaluated += 1
            cases = dict(zip(valid_idx, combo))
            if self.sharing:
                assert state.sharing is not None
                pre = interval_sum(
                    [(init_copy, init_copy)]
                    + [(c.min_count, c.max_count) for c in combo]
                )
                if not _intervals_intersect(pre, state.sharing.as_interval()):
                    continue
            yield cases

    def _make_ctx(self, env: _Env, cases: dict[int, CountCase]) -> Ctx:
        """Initiator's view of the other caches under one scenario."""
        present = frozenset(
            env[i][0].symbol for i, case in cases.items() if case.is_present
        )
        copies = _classify_interval(
            interval_sum((c.min_count, c.max_count) for c in cases.values())
        )
        return Ctx(present=present, copies=copies)

    def _present_data_values(
        self, env: _Env, cases: dict[int, CountCase], symbol: str
    ) -> list[DataValue | None]:
        """Distinct ``cdata`` values of present classes in *symbol*.

        Used to branch over the "arbitrarily chosen" supplying cache when
        several classes of the same FSM state carry different data (this
        only happens in buggy protocols, but the verifier must explore
        every choice).
        """
        values: dict[DataValue | None, None] = {}
        for i, case in cases.items():
            label = env[i][0]
            if label.symbol == symbol and case.is_present:
                values.setdefault(label.data)
        if not values:
            raise ExpansionSemanticsError(
                f"no present {symbol} class to supply data (spec/ctx mismatch)"
            )
        return list(values)

    def _build_successors(
        self,
        state: CompositeState,
        init_label: Label,
        op: Op,
        env: _Env,
        cases: dict[int, CountCase],
        outcome: Outcome,
    ) -> list[CompositeState]:
        """Assemble successor states for one (initiator, op, scenario).

        Returns one successor per distinct choice of write-back/load data
        source (a single successor for correct protocols).
        """
        spec = self.spec
        aug = self.augmented
        if outcome.stalled:
            # A refused operation leaves the global state untouched.
            return [state]
        store = is_store(op)
        becomes_invalid = outcome.next_state == spec.invalid

        # --- choices of the write-back data value -------------------------
        if not aug or outcome.writeback_from is None:
            wb_choices: list[DataValue | None] = [None]
        elif outcome.writeback_from == INITIATOR:
            wb_choices = [init_label.data]
        else:
            wb_choices = self._present_data_values(env, cases, outcome.writeback_from)

        # --- choices of the initiator's load value ------------------------
        # Encoded as ("none", None) / ("memory", None) / ("cache", value).
        if not aug or outcome.load_from is None:
            load_choices: list[tuple[str, DataValue | None]] = [("none", None)]
        elif outcome.load_from.kind == "memory":
            load_choices = [("memory", None)]
        else:
            load_choices = [
                ("cache", v)
                for v in self._present_data_values(
                    env, cases, outcome.load_from.symbol or ""
                )
            ]

        successors: list[CompositeState] = []
        for wb_value, (load_kind, load_data) in itertools.product(
            wb_choices, load_choices
        ):
            mdata1: DataValue | None = None
            init_data: DataValue | None = None
            if aug:
                assert state.mdata is not None
                mdata1 = memory_after_writeback(state.mdata, wb_value)
                if load_kind == "memory":
                    load_value: DataValue | None = mdata1
                elif load_kind == "cache":
                    load_value = load_data
                else:
                    load_value = None
                init_data = initiator_data_after(
                    init_label.data or DataValue.NODATA,
                    load_value,
                    store=store,
                    becomes_invalid=becomes_invalid,
                )

            pieces: list[tuple[Label, Rep]] = [
                (Label(outcome.next_state, init_data), Rep.ONE)
            ]
            post_copies: list[Interval] = [
                (0, 0) if becomes_invalid else (1, 1)
            ]
            for i, (label, rep) in enumerate(env):
                if label.symbol == spec.invalid:
                    pieces.append((label, rep))
                    continue
                case = cases[i]
                if case is CountCase.ZERO:
                    continue
                reaction = outcome.observer_for(label.symbol)
                obs_invalid = reaction.next_state == spec.invalid
                new_data = None
                if aug:
                    new_data = observer_data_after(
                        label.data or DataValue.NODATA,
                        becomes_invalid=obs_invalid,
                        updated=reaction.updated,
                        store=store,
                    )
                pieces.append(
                    (Label(reaction.next_state, new_data), conditioned_rep(case))
                )
                if not obs_invalid:
                    post_copies.append((case.min_count, case.max_count))

            mdata2 = (
                memory_after_store(
                    mdata1 if mdata1 is not None else DataValue.FRESH,
                    store=store,
                    write_through=outcome.write_through,
                )
                if aug
                else None
            )
            sharing = None
            if self.sharing:
                sharing = self._post_sharing(interval_sum(post_copies))
            succ = make_state(pieces, sharing=sharing, mdata=mdata2)
            succ.check_consistent(spec.invalid)
            if succ not in successors:
                successors.append(succ)
        return successors

    @staticmethod
    def _post_sharing(interval: Interval) -> SharingLevel:
        """Definite sharing level of a successor state.

        Scenario conditioning guarantees the post-transition copy count
        is exact or bounded below by two, so the classification is total
        for sharing-detection protocols.
        """
        case = _classify_interval(interval)
        if case is CountCase.SOME:
            raise ExpansionSemanticsError(
                f"ambiguous post-transition copy count {interval}; "
                "scenario splitting failed to make the sharing level definite"
            )
        return {
            CountCase.ZERO: SharingLevel.NONE,
            CountCase.ONE: SharingLevel.ONE,
            CountCase.MANY: SharingLevel.MANY,
        }[case]
