"""Abstract protocol specification (paper Definition 1).

A protocol is a deterministic per-cache FSM ``M = (Q, Σ, F, δ)``:

* ``Q`` -- :attr:`ProtocolSpec.states` (the first entry by convention is
  the invalid state, also exposed as :attr:`ProtocolSpec.invalid`);
* ``Σ`` -- :attr:`ProtocolSpec.operations` (read, write, replacement);
* ``F`` -- either null or the sharing-detection function, selected by
  :attr:`ProtocolSpec.uses_sharing_detection`;
* ``δ`` -- :meth:`ProtocolSpec.react`, which returns the full
  :class:`~repro.core.reactions.Outcome` of one operation (initiator
  transition, observer transitions and data actions).

Concrete protocols live in :mod:`repro.protocols`.
"""

from __future__ import annotations

import abc
import itertools
from typing import Sequence

from .errors import StatePattern
from .reactions import Ctx, Outcome, INITIATOR
from .symbols import CountCase, Op

__all__ = ["ProtocolSpec", "ProtocolDefinitionError"]


class ProtocolDefinitionError(Exception):
    """A protocol specification is internally inconsistent."""


class ProtocolSpec(abc.ABC):
    """Base class for cache coherence protocol specifications.

    Subclasses define the class attributes documented below and
    implement :meth:`react`.  The base class provides structural
    validation (:meth:`validate`) that exercises ``react`` over every
    state/operation/context combination, so malformed specifications
    fail fast rather than mid-verification.
    """

    #: Short identifier used by the CLI and the registry.
    name: str = ""
    #: Human-readable protocol name for reports.
    full_name: str = ""
    #: FSM state symbols ``Q``; must include :attr:`invalid`.
    states: tuple[str, ...] = ()
    #: The state meaning "no valid copy present" (invalidated or absent).
    invalid: str = ""
    #: True when transitions consult the sharing-detection function.
    uses_sharing_detection: bool = False
    #: Operation alphabet ``Σ``.
    operations: tuple[Op, ...] = (Op.READ, Op.WRITE, Op.REPLACE)
    #: Protocol-specific forbidden state combinations.
    error_patterns: tuple[StatePattern, ...] = ()
    #: States whose copy differs from memory (used by reports/examples).
    owner_states: tuple[str, ...] = ()
    #: States implying "the only cached copy in the system".  Used by the
    #: hierarchical substrate: a level-2 cache outside these states means
    #: other clusters may hold the block, so a level-1 fill must not
    #: claim exclusivity.
    exclusive_states: tuple[str, ...] = ()
    #: The state a read miss loads when the (hierarchical) sharing line
    #: is asserted; required for two-level operation of protocols whose
    #: fills are exclusive by default.
    shared_fill_state: str | None = None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def react(self, state: str, op: Op, ctx: Ctx) -> Outcome:
        """Full system reaction to *op* issued by a cache in *state*.

        ``ctx`` describes the rest of the system from the initiator's
        perspective; implementations must be deterministic functions of
        ``(state, op, ctx)``.
        """

    def applicable(self, state: str, op: Op) -> bool:
        """Whether a cache in *state* can issue *op*.

        Reads and writes are always possible; replacing a block that is
        not present is meaningless and excluded by default.
        """
        return not (op is Op.REPLACE and state == self.invalid)

    # ------------------------------------------------------------------
    def valid_states(self) -> tuple[str, ...]:
        """All states other than the invalid state."""
        return tuple(s for s in self.states if s != self.invalid)

    def describe(self) -> str:
        """Multi-line textual summary of the specification."""
        lines = [
            f"{self.full_name or self.name} ({self.name})",
            f"  states: {', '.join(self.states)} (invalid: {self.invalid})",
            f"  characteristic function: "
            f"{'sharing-detection' if self.uses_sharing_detection else 'null'}",
            "  forbidden combinations:",
        ]
        for pattern in self.error_patterns:
            lines.append(f"    - {pattern.describe()}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check the specification for internal consistency.

        Exercises :meth:`react` over every (state, operation, context)
        combination and verifies that all named states exist, that
        replacement ends in the invalid state, and that observers named
        in outcomes are valid states.  Raises
        :class:`ProtocolDefinitionError` on the first problem found.
        """
        if not self.name:
            raise ProtocolDefinitionError("protocol has no name")
        if self.invalid not in self.states:
            raise ProtocolDefinitionError(
                f"{self.name}: invalid state {self.invalid!r} not in states"
            )
        if len(set(self.states)) != len(self.states):
            raise ProtocolDefinitionError(f"{self.name}: duplicate state symbols")
        valid = self.valid_states()
        for state, op in itertools.product(self.states, self.operations):
            if not self.applicable(state, op):
                continue
            for ctx in self._sample_contexts(valid):
                try:
                    outcome = self.react(state, op, ctx)
                except Exception as exc:  # noqa: BLE001 - reported with context
                    raise ProtocolDefinitionError(
                        f"{self.name}: react({state}, {op}, {ctx}) raised {exc!r}"
                    ) from exc
                self._check_outcome(state, op, ctx, outcome)

    def _sample_contexts(self, valid: Sequence[str]) -> list[Ctx]:
        """A representative set of contexts for :meth:`validate`.

        The empty context, every singleton valid state and every
        two-state combination with both ONE and MANY copy counts.
        """
        contexts = [Ctx(frozenset(), CountCase.ZERO)]
        for sym in valid:
            contexts.append(Ctx(frozenset({sym}), CountCase.ONE))
            contexts.append(Ctx(frozenset({sym}), CountCase.MANY))
        for a, b in itertools.combinations(valid, 2):
            contexts.append(Ctx(frozenset({a, b}), CountCase.MANY))
        return contexts

    def _check_outcome(self, state: str, op: Op, ctx: Ctx, outcome: Outcome) -> None:
        where = f"{self.name}: react({state}, {op.value}, copies={ctx.copies})"
        if outcome.next_state not in self.states:
            raise ProtocolDefinitionError(
                f"{where} -> unknown next state {outcome.next_state!r}"
            )
        if outcome.stalled:
            if outcome.next_state != state:
                raise ProtocolDefinitionError(
                    f"{where} -> a stalled operation must leave the state "
                    "unchanged"
                )
            return
        if op is Op.REPLACE and outcome.next_state != self.invalid:
            raise ProtocolDefinitionError(
                f"{where} -> replacement must end in {self.invalid}"
            )
        for observer, reaction in outcome.observers.items():
            if observer not in self.states or observer == self.invalid:
                raise ProtocolDefinitionError(
                    f"{where} -> reaction keyed by non-valid state {observer!r}"
                )
            if reaction.next_state not in self.states:
                raise ProtocolDefinitionError(
                    f"{where} -> observer {observer} moves to unknown state "
                    f"{reaction.next_state!r}"
                )
        if outcome.load_from is not None and outcome.load_from.kind == "cache":
            src = outcome.load_from.symbol
            if src not in self.states or src == self.invalid:
                raise ProtocolDefinitionError(
                    f"{where} -> load source {src!r} is not a valid state"
                )
            if not ctx.has(src):
                raise ProtocolDefinitionError(
                    f"{where} -> loads from {src} but the context has none"
                )
        wb = outcome.writeback_from
        if wb is not None and wb != INITIATOR:
            if wb not in self.states or wb == self.invalid:
                raise ProtocolDefinitionError(
                    f"{where} -> writeback source {wb!r} is not a valid state"
                )
            if not ctx.has(wb):
                raise ProtocolDefinitionError(
                    f"{where} -> writes back from {wb} but the context has none"
                )
        if state == self.invalid and outcome.next_state != self.invalid:
            if outcome.load_from is None:
                raise ProtocolDefinitionError(
                    f"{where} -> fills the cache without a data source"
                )
