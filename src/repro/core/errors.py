"""Erroneous-state conditions and verification violations.

Section 2.1 of the paper identifies two kinds of erroneous global
states for the Illinois protocol -- *state-compatibility* violations
("several caches in the Dirty state", "Dirty coexisting with Shared")
-- and Definition 3 adds the *data-consistency* requirement that no
processor may ever read an obsolete value.

This module provides:

* a small pattern language for per-protocol state-compatibility rules
  (:class:`ForbidMultiple`, :class:`ForbidTogether`, :class:`ForbidState`),
  evaluated both on composite states (symbolic engine) and on concrete
  count vectors (enumeration/simulation engines);
* the two generic data-consistency checks -- a *readable obsolete copy*
  and a *lost value* (no fresh copy anywhere) -- applied to augmented
  states;
* :class:`Violation` and :class:`Witness` records used in error reports.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from .composite import CompositeState
from .symbols import DataValue

__all__ = [
    "ErrorKind",
    "StatePattern",
    "ForbidMultiple",
    "ForbidTogether",
    "ForbidState",
    "Violation",
    "Witness",
    "check_patterns",
    "check_data_consistency",
    "concrete_pattern_violations",
]


class ErrorKind(str, enum.Enum):
    """Classification of a verification failure."""

    #: A protocol-specific forbidden combination of cache states.
    INCOMPATIBLE_STATES = "incompatible-states"
    #: A processor could read a copy holding an obsolete value (Def. 3).
    READABLE_OBSOLETE = "readable-obsolete"
    #: The latest written value exists neither in memory nor in any cache.
    VALUE_LOST = "value-lost"
    #: A pending request can be stalled forever around a cycle of global
    #: transitions that never serves it (liveness mode).
    STALL_CYCLE = "stall-cycle"
    #: A pending request is stalled in a state no transition can leave:
    #: the retry itself is the only move left (liveness mode).
    DEADLOCK = "deadlock"


class StatePattern(abc.ABC):
    """A forbidden structural condition over global states."""

    @abc.abstractmethod
    def violated_by_composite(self, state: CompositeState) -> bool:
        """True iff some configuration admitted by *state* violates this."""

    @abc.abstractmethod
    def violated_by_counts(self, counts: Mapping[str, int]) -> bool:
        """True iff the exact per-symbol count vector violates this."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable statement of the rule."""


@dataclass(frozen=True)
class ForbidMultiple(StatePattern):
    """At most one cache may be in *symbol* (e.g. at most one Dirty copy).

    On composite states the check is *possibilistic*: a class whose
    operator admits two or more members is flagged.  The symbolic
    expansion only ever constructs a ``+`` class for an ownership state
    when two owners genuinely coexist (see DESIGN.md), which is exactly
    how the paper treats ``(Dirty+, ...)`` as erroneous.
    """

    symbol: str

    def violated_by_composite(self, state: CompositeState) -> bool:
        """True iff the composite state admits two or more members."""
        _, hi = state.symbol_interval(self.symbol)
        return hi is None or hi >= 2

    def violated_by_counts(self, counts: Mapping[str, int]) -> bool:
        """True iff the exact count vector has two or more members."""
        return counts.get(self.symbol, 0) >= 2

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"at most one cache may be in state {self.symbol}"


@dataclass(frozen=True)
class ForbidTogether(StatePattern):
    """States *a* and *b* may not both have an instance.

    Captures semantic contradictions such as a Dirty copy (memory
    obsolete, sole copy) coexisting with a Shared copy (all copies equal
    memory).
    """

    a: str
    b: str

    def violated_by_composite(self, state: CompositeState) -> bool:
        """True iff both symbols can be simultaneously instantiated."""
        a_lo, a_hi = state.symbol_interval(self.a)
        b_lo, b_hi = state.symbol_interval(self.b)
        a_possible = a_hi is None or a_hi >= 1
        b_possible = b_hi is None or b_hi >= 1
        return a_possible and b_possible

    def violated_by_counts(self, counts: Mapping[str, int]) -> bool:
        """True iff both symbols have at least one member."""
        return counts.get(self.a, 0) >= 1 and counts.get(self.b, 0) >= 1

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"states {self.a} and {self.b} may not coexist"


@dataclass(frozen=True)
class ForbidState(StatePattern):
    """No cache may ever enter *symbol* (useful for testing dead states)."""

    symbol: str

    def violated_by_composite(self, state: CompositeState) -> bool:
        """True iff the composite state admits any member at all."""
        _, hi = state.symbol_interval(self.symbol)
        return hi is None or hi >= 1

    def violated_by_counts(self, counts: Mapping[str, int]) -> bool:
        """True iff the exact count vector has at least one member."""
        return counts.get(self.symbol, 0) >= 1

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"state {self.symbol} must be unreachable"


@dataclass(frozen=True)
class Violation:
    """A single verification failure found in one reachable state."""

    kind: ErrorKind
    message: str
    state: CompositeState | None = None

    def __str__(self) -> str:
        where = f" in {self.state.pretty()}" if self.state is not None else ""
        return f"[{self.kind.value}] {self.message}{where}"


@dataclass(frozen=True)
class Witness:
    """A counterexample path from the initial state to an erroneous one.

    ``steps`` is the sequence of ``(state, transition-label)`` pairs
    leading from the initial state (first entry, label of the transition
    *leaving* it) to the erroneous state (:attr:`final`).
    """

    steps: tuple[tuple[CompositeState, str], ...]
    final: CompositeState
    violations: tuple[Violation, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.steps)

    def render(self) -> str:
        """Multi-line rendering of the counterexample path."""
        lines = []
        for state, label in self.steps:
            lines.append(f"  {state.pretty()}")
            lines.append(f"    --{label}-->")
        lines.append(f"  {self.final.pretty()}    <== ERRONEOUS")
        for violation in self.violations:
            lines.append(f"    {violation}")
        return "\n".join(lines)


def check_patterns(
    state: CompositeState, patterns: Sequence[StatePattern]
) -> list[Violation]:
    """Evaluate every forbidden pattern against a composite state."""
    found = []
    for pattern in patterns:
        if pattern.violated_by_composite(state):
            found.append(
                Violation(ErrorKind.INCOMPATIBLE_STATES, pattern.describe(), state)
            )
    return found


def check_data_consistency(state: CompositeState, invalid: str) -> list[Violation]:
    """Generic Definition-3 checks on an augmented composite state.

    * *readable obsolete*: a valid copy whose ``cdata`` is obsolete is
      readable by its processor without any coherence action, exposing a
    value older than the last STORE;
    * *value lost*: neither memory nor any cache holds the fresh value,
      so the last STORE can never be observed again.
    """
    violations: list[Violation] = []
    fresh_somewhere = state.mdata is DataValue.FRESH
    for label, rep in state.items():
        if label.symbol == invalid or label.data is None:
            continue
        if not rep.may_be_present:
            continue
        if label.data is DataValue.OBSOLETE:
            violations.append(
                Violation(
                    ErrorKind.READABLE_OBSOLETE,
                    f"a processor can read obsolete data from a {label.symbol} copy",
                    state,
                )
            )
        if label.data is DataValue.FRESH and rep.min_count >= 1:
            fresh_somewhere = True
    if state.mdata is not None and not fresh_somewhere:
        violations.append(
            Violation(
                ErrorKind.VALUE_LOST,
                "the most recently written value survives nowhere",
                state,
            )
        )
    return violations


def concrete_pattern_violations(
    counts: Mapping[str, int], patterns: Sequence[StatePattern]
) -> list[str]:
    """Evaluate forbidden patterns on an exact per-symbol count vector."""
    return [p.describe() for p in patterns if p.violated_by_counts(counts)]
