"""Shared data-value semantics (paper Section 2.4).

These pure functions encode how the context variables ``cdata`` and
``mdata`` evolve when an operation executes.  They are deliberately the
*single* implementation used by the symbolic expansion, the concrete
product-machine enumeration and the executable simulator -- any
divergence between the three engines would invalidate the
cross-validation experiments, so the rules live here exactly once.

The rules generalize the per-protocol pseudo-code of Section 2.4:

* a write-back copies some cache's current value into memory;
* a load copies the source's current value into the initiator;
* a STORE makes the writer's copy *fresh*, memory *fresh* only under
  write-through (otherwise *obsolete*), and every surviving remote copy
  that is not explicitly updated *obsolete* -- which is how a protocol
  bug such as a forgotten invalidation becomes a reachable erroneous
  state in the sense of Definition 3.
"""

from __future__ import annotations

from .symbols import DataValue, Op

__all__ = [
    "memory_after_writeback",
    "memory_after_store",
    "initiator_data_after",
    "observer_data_after",
    "is_store",
]


def is_store(op: Op) -> bool:
    """True iff the operation writes a new value (a STORE)."""
    return op is Op.WRITE


def memory_after_writeback(
    mdata: DataValue, writeback_value: DataValue | None
) -> DataValue:
    """Memory value after the (optional) write-back phase.

    The write-back happens *before* any load or store of the transaction
    (e.g. Synapse services a read miss on a dirty block by first flushing
    the dirty copy to memory).
    """
    if writeback_value is None:
        return mdata
    if writeback_value is DataValue.NODATA:
        raise ValueError("cannot write back a copy that holds no data")
    return writeback_value


def memory_after_store(mdata: DataValue, *, store: bool, write_through: bool) -> DataValue:
    """Memory value after the (optional) store phase.

    A store invalidates memory's claim to the latest value unless the
    protocol writes the new value through.
    """
    if not store:
        return mdata
    return DataValue.FRESH if write_through else DataValue.OBSOLETE


def initiator_data_after(
    own: DataValue,
    load_value: DataValue | None,
    *,
    store: bool,
    becomes_invalid: bool,
) -> DataValue:
    """Initiator's ``cdata`` after the transaction.

    ``load_value`` is the value delivered by the block source on a miss
    (``None`` on a hit).  A store then overwrites whatever was loaded
    with the fresh value; invalidating the block (replacement) discards
    data entirely.
    """
    if becomes_invalid:
        return DataValue.NODATA
    value = own if load_value is None else load_value
    if store:
        return DataValue.FRESH
    if value is DataValue.NODATA:
        raise ValueError("initiator ends in a valid state without data")
    return value


def observer_data_after(
    old: DataValue,
    *,
    becomes_invalid: bool,
    updated: bool,
    store: bool,
) -> DataValue:
    """An observer copy's ``cdata`` after the transaction.

    On a store, remote copies either get invalidated, get the new value
    broadcast to them (*updated*, as in Dragon/Firefly), or silently go
    stale.  On non-stores a surviving copy keeps its value (state changes
    such as Dirty→Shared on a supply do not change data).
    """
    if becomes_invalid:
        return DataValue.NODATA
    if old is DataValue.NODATA:
        raise ValueError("a valid observer copy cannot hold nodata")
    if store:
        if updated:
            return DataValue.FRESH
        return DataValue.OBSOLETE if old is DataValue.FRESH else old
    return old
