"""Structural covering and containment (paper Definitions 8-10).

*Structural covering* (``S1 ≤ S2``) lifts the information order on
repetition operators to composite states: every class of ``S1`` must be
matched by a class of ``S2`` with an operator at least as strong, and --
reading footnote 3's implicit ``0`` operator -- every class present only
in ``S2`` must admit emptiness (operator ``*``).  Semantically,
``S1 ≤ S2`` iff every concrete configuration admitted by ``S1`` is also
admitted by ``S2``.

*Containment* (``S1 ⊆_F S2``) additionally requires equal
characteristic-function values (and, in augmented mode, an equal memory
context variable), which by Lemmas 1-2 and Corollaries 1-2 makes pruning
of contained states sound: every successor of ``S1`` is covered by a
successor of ``S2``.
"""

from __future__ import annotations

from typing import Callable

from .composite import CompositeState
from .operators import Rep, leq

__all__ = [
    "structurally_covers",
    "contains",
    "is_essential_among",
    "set_probe",
]

#: Optional observability probe called with every ``contains`` outcome.
#: Installed by instrumented runs (see :func:`repro.core.essential.explore`
#: and :mod:`repro.obs`); the single ``None`` check below is the entire
#: cost on the uninstrumented hot path.
_PROBE: Callable[[bool], None] | None = None


def set_probe(probe: Callable[[bool], None] | None) -> None:
    """Install (or, with ``None``, remove) the containment probe.

    The probe receives the boolean outcome of every :func:`contains`
    call.  It is process-global, so instrumented expansions are not
    re-entrant across threads; callers must clear it when done.
    """
    global _PROBE
    _PROBE = probe


def structurally_covers(small: CompositeState, big: CompositeState) -> bool:
    """Return True iff ``small ≤ big`` (Definition 8).

    Checks ``rep_small(q) ≤ rep_big(q)`` for every class label appearing
    in either state, with absent labels carrying operator ``0``
    (so a label present only in *big* needs ``0 ≤ rep_big``, i.e. a
    ``*`` operator, and a label present only in *small* always fails --
    its operator is at least ``1``, and ``1 ≤ 0`` does not hold).

    Implemented as a merge walk over the two canonically sorted class
    tuples (this is the hottest comparison in the whole verifier).
    """
    small_classes = small.classes
    big_classes = big.classes
    i = j = 0
    n_small = len(small_classes)
    n_big = len(big_classes)
    while i < n_small and j < n_big:
        label_s, rep_s = small_classes[i]
        label_b, rep_b = big_classes[j]
        if label_s == label_b:
            if not leq(rep_s, rep_b):
                return False
            i += 1
            j += 1
        elif label_s.sort_key < label_b.sort_key:
            return False  # class present only in small: 1 ≤ 0 fails
        else:
            if rep_b is not Rep.STAR:
                return False  # class present only in big must admit 0
            j += 1
    if i < n_small:
        return False
    while j < n_big:
        if big_classes[j][1] is not Rep.STAR:
            return False
        j += 1
    return True


def contains(small: CompositeState, big: CompositeState) -> bool:
    """Return True iff ``small ⊆_F big`` (Definition 9).

    Structural covering plus equality of every state annotation that
    participates in the characteristic function or the data model: the
    sharing level (the value of the sharing-detection ``F``) and the
    memory context variable ``mdata``.
    """
    outcome = (
        small.sharing == big.sharing
        and small.mdata == big.mdata
        and structurally_covers(small, big)
    )
    if _PROBE is not None:
        _PROBE(outcome)
    return outcome


def is_essential_among(
    state: CompositeState, others: "list[CompositeState] | tuple[CompositeState, ...]"
) -> bool:
    """True iff *state* is contained in none of *others* (Definition 10).

    A composite state is *essential* within a set when no distinct member
    of the set contains it.
    """
    for other in others:
        if other == state:
            continue
        if contains(state, other):
            return False
    return True

