"""Composite states (paper Definitions 4, 6 and 7).

A *composite state* represents the global state of one memory block in a
system with an **arbitrary** number of caches.  Caches holding the same
FSM state are grouped into a class annotated with a repetition operator
(:mod:`repro.core.operators`).

Two extensions beyond the bare Definition 7 are carried by the state so
that verification per the paper is possible:

* a :class:`~repro.core.symbols.SharingLevel` annotation records the
  value of the sharing-detection characteristic function at the moment
  the state was constructed (Section 4 explains why ``(Shared+, Inv*)``
  with sharing *v3* and ``(Shared, Inv+)`` with sharing *v2* must remain
  distinct);
* in *augmented* mode (Definition 4) every class label additionally
  carries the ``cdata`` context variable of its members and the state
  carries the global ``mdata`` variable, enabling the data-consistency
  check of Definition 3.

States are immutable, hashable values; all mutation happens by
constructing new states through :func:`make_state`, which applies the
aggregation rules so the representation is canonical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .operators import (
    Interval,
    Rep,
    aggregate,
    interval_of,
    interval_sum,
    rep_from_interval,
)
from .symbols import DataValue, SharingLevel

__all__ = [
    "Label",
    "CompositeState",
    "make_state",
    "parse_class_spec",
]


@dataclass(frozen=True)
class Label:
    """Identity of a cache-state class.

    ``symbol`` is the protocol FSM state symbol (e.g. ``"Dirty"``).  In
    augmented mode ``data`` is the ``cdata`` context variable shared by
    every member of the class; in structural mode it is ``None``.
    """

    symbol: str
    data: DataValue | None = None

    @property
    def sort_key(self) -> tuple[str, str]:
        """Total ordering key (structural labels sort before augmented)."""
        cached = self.__dict__.get("_sort_key")
        if cached is None:
            cached = (self.symbol, "" if self.data is None else self.data.value)
            object.__setattr__(self, "_sort_key", cached)
        return cached

    def __lt__(self, other: "Label") -> bool:
        if not isinstance(other, Label):
            return NotImplemented
        return self.sort_key < other.sort_key

    def __str__(self) -> str:
        if self.data is None:
            return self.symbol
        return f"{self.symbol}:{self.data.value}"

    def with_symbol(self, symbol: str) -> "Label":
        """Return a copy of this label with a different state symbol."""
        return Label(symbol, self.data)

    def with_data(self, data: DataValue | None) -> "Label":
        """Return a copy of this label with a different data value."""
        return Label(self.symbol, data)


@dataclass(frozen=True)
class CompositeState:
    """A canonical composite state.

    ``classes`` maps each present class label to its repetition operator;
    absent labels implicitly carry operator ``0`` (footnote 3 of the
    paper).  ``sharing`` is the stored characteristic-function value for
    sharing-detection protocols (``None`` for null-``F`` protocols) and
    ``mdata`` is the memory context variable in augmented mode.

    Use :func:`make_state` rather than the raw constructor; it sorts,
    aggregates and validates.
    """

    classes: tuple[tuple[Label, Rep], ...]
    sharing: SharingLevel | None = None
    mdata: DataValue | None = None

    def __hash__(self) -> int:
        # States are hashed millions of times during containment
        # pruning; cache the value (the dataclass is frozen).
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.classes, self.sharing, self.mdata))
            object.__setattr__(self, "_hash", cached)
        return cached

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def rep_of(self, label: Label) -> Rep:
        """Operator of *label*'s class (``Rep.ZERO`` when absent)."""
        for lbl, rep in self.classes:
            if lbl == label:
                return rep
        return Rep.ZERO

    def labels(self) -> tuple[Label, ...]:
        """All present class labels, in canonical order."""
        return tuple(lbl for lbl, _ in self.classes)

    def items(self) -> Iterator[tuple[Label, Rep]]:
        """Iterate over ``(label, operator)`` pairs of present classes."""
        return iter(self.classes)

    def symbols(self) -> frozenset[str]:
        """Set of FSM state symbols with at least a potential member."""
        return frozenset(lbl.symbol for lbl, _ in self.classes)

    def symbol_interval(self, symbol: str) -> Interval:
        """Count interval for caches whose FSM state is *symbol*.

        Sums the intervals of every class sharing the symbol (augmented
        mode can hold several classes per symbol with different
        ``cdata``).
        """
        return interval_sum(
            interval_of(rep) for lbl, rep in self.classes if lbl.symbol == symbol
        )

    def symbol_rep(self, symbol: str) -> Rep:
        """Weakest operator covering the total count of *symbol*."""
        lo, hi = self.symbol_interval(symbol)
        return rep_from_interval(lo, hi)

    def copies_interval(self, invalid: str) -> Interval:
        """Count interval of valid cached copies (non-*invalid* caches)."""
        return interval_sum(
            interval_of(rep)
            for lbl, rep in self.classes
            if lbl.symbol != invalid
        )

    @property
    def is_augmented(self) -> bool:
        """True when class labels carry ``cdata`` context variables."""
        return any(lbl.data is not None for lbl, _ in self.classes)

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------
    def check_consistent(self, invalid: str) -> None:
        """Raise ``ValueError`` if annotations contradict the structure.

        The stored sharing level must intersect the structural interval
        of valid-copy counts, and invalid-class labels in augmented mode
        must carry ``nodata``.
        """
        if self.sharing is not None:
            lo, hi = self.copies_interval(invalid)
            slo, shi = self.sharing.as_interval()
            upper_ok = hi is None or slo <= hi
            lower_ok = shi is None or lo <= shi
            if not (upper_ok and lower_ok):
                raise ValueError(
                    f"sharing level {self.sharing} inconsistent with "
                    f"copy interval [{lo}, {hi}] in {self}"
                )
        for lbl, _ in self.classes:
            if lbl.data is not None:
                if (lbl.symbol == invalid) != (lbl.data is DataValue.NODATA):
                    raise ValueError(
                        f"label {lbl} violates the invalid/nodata pairing"
                    )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def pretty(self, *, annotations: bool = True) -> str:
        """Human-readable rendering, e.g. ``(Shared+, Inv*) [sharing=many]``."""
        if not self.classes:
            body = "(empty)"
        else:
            parts = []
            for lbl, rep in self.classes:
                suffix = "" if rep is Rep.ONE else rep.value
                parts.append(f"{lbl}{suffix}")
            body = "(" + ", ".join(parts) + ")"
        if not annotations:
            return body
        notes = []
        if self.sharing is not None:
            notes.append(f"sharing={self.sharing.value}")
        if self.mdata is not None:
            notes.append(f"mdata={self.mdata.value}")
        if notes:
            return f"{body} [{', '.join(notes)}]"
        return body

    def structure_key(self) -> tuple[tuple[Label, Rep], ...]:
        """Hashable key for the bare structure (no annotations)."""
        return self.classes

    def __str__(self) -> str:
        return self.pretty()


def make_state(
    pieces: Mapping[Label, Rep] | Iterable[tuple[Label, Rep]],
    *,
    sharing: SharingLevel | None = None,
    mdata: DataValue | None = None,
) -> CompositeState:
    """Build a canonical :class:`CompositeState` from class pieces.

    Pieces with the same label are merged with the aggregation rules;
    ``Rep.ZERO`` classes are dropped; classes are sorted into a canonical
    order so equal states compare equal.
    """
    merged: dict[Label, Rep] = {}
    items = pieces.items() if isinstance(pieces, Mapping) else pieces
    for label, rep in items:
        if not isinstance(rep, Rep):
            raise TypeError(f"expected Rep, got {rep!r}")
        if label in merged:
            merged[label] = aggregate(merged[label], rep)
        elif rep is not Rep.ZERO:
            merged[label] = rep
    classes = tuple(sorted(merged.items(), key=lambda it: it[0]))
    return CompositeState(classes=classes, sharing=sharing, mdata=mdata)


_REP_SUFFIXES = {"+": Rep.PLUS, "*": Rep.STAR}


def parse_class_spec(text: str) -> tuple[str, Rep]:
    """Parse a compact class spec like ``"Shared+"`` or ``"Inv*"``.

    A trailing ``+`` or ``*`` selects the operator; no suffix means the
    singleton operator.  Used by tests and the CLI to write states the
    way the paper does.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty class spec")
    if text[-1] in _REP_SUFFIXES:
        return text[:-1], _REP_SUFFIXES[text[-1]]
    return text, Rep.ONE
