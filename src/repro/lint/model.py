"""Diagnostics model of the static protocol analyzer.

A lint run produces :class:`Diagnostic` records -- rule id, severity,
message and a :class:`Location` that is physical (file/line/column)
when the specification came from the DSL and symbolic (a dotted path
into the specification object) for registry or in-memory specs.  A
:class:`LintReport` collects the diagnostics of one specification
together with the findings silenced by ``# lint: ignore[...]``
annotations, and knows the severity roll-up the CLI exit status is
derived from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..core.protocol import ProtocolDefinitionError

__all__ = [
    "Severity",
    "Location",
    "Diagnostic",
    "LintReport",
    "LintError",
]


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the specification is statically broken --
    verifying it would crash, loop or answer a question about a machine
    that cannot exist; preflight rejects them.  ``WARNING`` findings
    are strong smells (dead rules, deadlock heuristics) that do not
    invalidate a verdict.  ``INFO`` findings are stylistic.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for sorting (errors first)."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Location:
    """Where a finding points.

    ``file``/``line``/``col`` locate DSL findings physically; ``symbol``
    is the symbolic path (e.g. ``react(Shared, W)`` or ``states``) used
    for registry specifications and as a secondary anchor for DSL ones.
    """

    file: str | None = None
    line: int | None = None
    col: int | None = None
    symbol: str | None = None

    def render(self, fallback: str = "<spec>") -> str:
        """The ``path:line:col`` prefix of one diagnostic line."""
        base = self.file if self.file else fallback
        if self.line is not None:
            base += f":{self.line}"
            if self.col is not None:
                base += f":{self.col}"
        if self.file is None and self.symbol:
            base += f" ({self.symbol})"
        return base

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering (``None`` fields omitted)."""
        payload: dict[str, Any] = {}
        for key in ("file", "line", "col", "symbol"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule against one specification."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)
    spec_name: str = ""

    def sort_key(self) -> tuple:
        """Deterministic report order: position, then severity, then id."""
        return (
            self.location.line if self.location.line is not None else 1 << 30,
            self.location.col if self.location.col is not None else 0,
            self.severity.rank,
            self.rule,
            self.message,
        )

    def render(self, fallback: str = "<spec>") -> str:
        """One ``file:line:col: PLxxx severity: message`` line."""
        return (
            f"{self.location.render(fallback)}: {self.rule} "
            f"{self.severity.value}: {self.message}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering of the finding."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.to_dict(),
            "spec": self.spec_name,
        }


@dataclass
class LintReport:
    """Every finding of one lint run over one specification."""

    target: str
    artifact: str | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    suppressed: tuple[Diagnostic, ...] = ()

    # ------------------------------------------------------------------
    def count(self, severity: Severity) -> int:
        """Number of (non-suppressed) findings of one severity."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        """Error-severity findings (the preflight/exit-status signal)."""
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        """Warning-severity findings."""
        return self.count(Severity.WARNING)

    @property
    def infos(self) -> int:
        """Info-severity findings."""
        return self.count(Severity.INFO)

    @property
    def ok(self) -> bool:
        """True iff the specification has no error-severity finding."""
        return self.errors == 0

    @property
    def clean(self) -> bool:
        """True iff there is no finding at all (any severity)."""
        return not self.diagnostics

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line roll-up used by the text renderer and the journal."""
        if self.clean:
            return f"{self.target}: clean"
        parts = []
        for severity in Severity:
            n = self.count(severity)
            if n:
                parts.append(f"{n} {severity.value}{'s' if n != 1 else ''}")
        line = f"{self.target}: " + ", ".join(parts)
        if self.suppressed:
            line += f" ({len(self.suppressed)} suppressed)"
        return line

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering of the whole report."""
        return {
            "target": self.target,
            "artifact": self.artifact,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "suppressed": [d.to_dict() for d in self.suppressed],
            "errors": self.errors,
            "warnings": self.warnings,
            "infos": self.infos,
        }


class LintError(ProtocolDefinitionError):
    """A preflight rejected a statically-broken specification.

    Subclasses :class:`ProtocolDefinitionError` so every existing
    caller that maps specification problems to the usage-error exit
    status (2) handles lint rejections identically.
    """

    def __init__(self, report: LintReport) -> None:
        findings = "; ".join(
            d.render(report.target)
            for d in report.diagnostics
            if d.severity is Severity.ERROR
        )
        super().__init__(
            f"{report.target}: {report.errors} lint error"
            f"{'s' if report.errors != 1 else ''} -- {findings}"
        )
        self.report = report


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Deterministic ordering used by every renderer."""
    return tuple(sorted(diagnostics, key=Diagnostic.sort_key))
