"""repro.lint -- static analysis of protocol specifications.

The paper's conclusion (Section 5) proposes a formal specification
language "to reduce the possibility of transcription errors"; this
package is the accompanying checker.  It inspects
:class:`~repro.core.protocol.ProtocolSpec` objects and DSL sources
*without running a symbolic expansion*: a pluggable rule registry
(:func:`~repro.lint.registry.rule`), a diagnostics model with physical
(DSL line/column) and symbolic locations, three renderers (text, JSON,
SARIF 2.1.0) and sixteen ``PLxxx`` rules grounded in the paper's FSM
model -- including the flow-sensitive rules powered by abstract
reachability over the guarded-action IR (:mod:`repro.lint.flow`).
See ``docs/LINT.md`` for the rule catalog and ``docs/IR.md`` for the
IR format.

Entry points::

    from repro.lint import lint_spec, lint_all, render_text

    report = lint_spec(get_protocol("illinois"))
    print(render_text([report]))

The batch engine and ``verify()`` use the same API as their
``preflight`` implementation; the CLI exposes it as ``repro lint``.
"""

from .api import (
    lint_all,
    lint_builtin,
    lint_path,
    lint_protocol,
    lint_source,
    lint_spec,
)
from .context import LintContext, ProbeEntry
from .flow import FlowAnalysis
from .model import Diagnostic, LintError, LintReport, Location, Severity
from .registry import RULES, SYNTAX_RULE, LintRule, rule, selected_rules
from .render import RENDERERS, render_json, render_sarif, render_text

# Populate RULES with the built-in rule set at import time: the dict is
# part of the public surface, so it must never be observed half-empty.
from . import rules as _builtin_rules  # noqa: E402,F401

__all__ = [
    "Diagnostic",
    "FlowAnalysis",
    "LintContext",
    "LintError",
    "LintReport",
    "LintRule",
    "Location",
    "ProbeEntry",
    "RENDERERS",
    "RULES",
    "SYNTAX_RULE",
    "Severity",
    "lint_all",
    "lint_builtin",
    "lint_path",
    "lint_protocol",
    "lint_source",
    "lint_spec",
    "render_json",
    "render_sarif",
    "render_text",
    "rule",
    "selected_rules",
]
