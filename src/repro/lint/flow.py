"""Abstract-reachability dataflow engine over the guarded-action IR.

The probe-based lint rules sample contexts; this module *computes*
them.  An abstract system configuration maps each valid state to a
saturating count -- ``ONE`` (exactly one cache) or ``MANY`` (two or
more) -- the same 0/1/many abstraction the paper's symbolic expansion
uses for composite states.  Starting from the all-invalid
configuration (every cache holds no copy), the engine explores the
finite configuration space to a fixpoint:

* pick an **initiator** state (any state in the configuration, or the
  invalid state -- there is always an unbounded supply of invalid
  caches in the parameterized model);
* when the initiator departs a ``MANY`` class, case-split the
  remainder (exactly one left vs. still many) so reachability is an
  over-approximation, never a guess;
* evaluate the decision list on the resulting present-set, then move
  the initiator and every affected **observer class wholesale** to
  their next states with saturating counts.

The space is bounded by ``3^|valid states|`` configurations, so the
fixpoint always terminates.  Because every abstract step corresponds
to at least one concrete system transition *and* every concrete
transition is covered by an abstract one, the analysis is a sound
over-approximation of reachability: a transition the engine never
selects is selected in **no** reachable concrete context, which is
what makes the dead-transition / vacuous-guard / subsumption rules
free of abstraction-induced false positives.

The engine never materializes outcomes (no load resolution, no
observer dictionaries) -- it only reads guards and interned action
fields -- so statically-broken specifications can still be analyzed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..ir.model import IRTransition, ProtocolIR

__all__ = ["FlowAnalysis", "Config"]

#: An abstract configuration: sorted ``(state_id, many)`` pairs for
#: every *valid* state holding at least one copy.  ``many`` is True
#: for "two or more caches".  The invalid state is implicit (its
#: population is unbounded in the parameterized model).
Config = tuple[tuple[int, bool], ...]

#: Safety valve far above ``3^5`` -- the largest real protocol here
#: has five valid states.  Hitting it means the IR is malformed.
MAX_CONFIGS = 100_000


def _freeze(cfg: dict[int, bool]) -> Config:
    return tuple(sorted(cfg.items()))


def _merge(cfg: dict[int, bool], state: int, many: bool) -> None:
    """Add a class of copies to *cfg* with saturating counts."""
    if state in cfg:
        cfg[state] = True
    else:
        cfg[state] = many


@dataclass
class FlowAnalysis:
    """One fixpoint run over a protocol's abstract configuration space.

    Attributes populated by the run:

    ``configs``
        Every reachable abstract configuration.
    ``reachable_states``
        State ids occurring in some reachable configuration (always
        includes the invalid state).
    ``cell_contexts``
        ``(state, op) -> set of reachable present-sets`` observed at
        that cell (the initiator's view of the rest of the system).
    ``selections``
        ``(state, op) -> set of (present, transition_index)`` pairs:
        which decision-list entry each reachable context selects.
    ``selected``
        Indices into ``ir.transitions`` selected in at least one
        reachable context.
    ``completes`` / ``stalls``
        Cells that complete (non-stall) / stall in at least one
        reachable context.
    ``holes``
        ``(state, op, present)`` reachable contexts matched by no
        transition (the flow-sensitive counterpart of PL003).
    ``edges``
        Initiator and observer state moves actually applied along
        reachable steps -- the message-flow graph the non-progress
        rule walks.
    """

    ir: ProtocolIR
    configs: set[Config] = field(default_factory=set)
    reachable_states: frozenset[int] = frozenset()
    cell_contexts: dict[tuple[int, int], set[frozenset[int]]] = field(
        default_factory=dict
    )
    selections: dict[tuple[int, int], set[tuple[frozenset[int], int]]] = field(
        default_factory=dict
    )
    selected: set[int] = field(default_factory=set)
    completes: set[tuple[int, int]] = field(default_factory=set)
    stalls: set[tuple[int, int]] = field(default_factory=set)
    holes: set[tuple[int, int, frozenset[int]]] = field(default_factory=set)
    edges: dict[int, set[int]] = field(default_factory=dict)
    transfers: int = 0

    def __post_init__(self) -> None:
        self._by_cell: dict[tuple[int, int], list[tuple[int, IRTransition]]] = {}
        for index, t in enumerate(self.ir.transitions):
            self._by_cell.setdefault((t.state, t.op), []).append((index, t))
        self._run()

    # -- fixpoint -------------------------------------------------------
    def _departures(
        self, cfg: dict[int, bool], initiator: int
    ) -> Iterator[dict[int, bool]]:
        """The possible "rest of the system" views after *initiator*
        leaves one cache out of *cfg* to issue an operation."""
        if initiator == self.ir.invalid:
            yield dict(cfg)
        elif cfg[initiator]:
            # MANY departs one member: one left, or still many.
            yield {**cfg, initiator: False}
            yield dict(cfg)
        else:
            rest = dict(cfg)
            del rest[initiator]
            yield rest

    def _run(self) -> None:
        ir = self.ir
        invalid = ir.invalid
        initial: Config = ()
        work: list[Config] = [initial]
        self.configs.add(initial)
        while work:
            config = work.pop()
            self.transfers += 1
            cfg = dict(config)
            for initiator in sorted(set(cfg) | {invalid}):
                for op in range(len(ir.ops)):
                    if not ir.applicable(initiator, op):
                        continue
                    cell = (initiator, op)
                    for others in self._departures(cfg, initiator):
                        present = frozenset(others)
                        self.cell_contexts.setdefault(cell, set()).add(present)
                        chosen: tuple[int, IRTransition] | None = None
                        for index, t in self._by_cell.get(cell, ()):
                            if t.guard.holds(present):
                                chosen = (index, t)
                                break
                        if chosen is None:
                            self.holes.add((initiator, op, present))
                            continue
                        index, t = chosen
                        self.selections.setdefault(cell, set()).add(
                            (present, index)
                        )
                        self.selected.add(index)
                        if t.action.stalled:
                            # A stall leaves the system unchanged.
                            self.stalls.add(cell)
                            continue
                        self.completes.add(cell)
                        succ = dict(others)
                        for obs, nxt, _updated in t.action.observers:
                            if obs not in succ:
                                continue
                            many = succ.pop(obs)
                            if nxt != invalid:
                                _merge(succ, nxt, many)
                            self.edges.setdefault(obs, set()).add(nxt)
                        next_state = t.action.next_state
                        self.edges.setdefault(initiator, set()).add(next_state)
                        if next_state != invalid:
                            _merge(succ, next_state, False)
                        frozen = _freeze(succ)
                        if frozen not in self.configs:
                            if len(self.configs) >= MAX_CONFIGS:
                                raise RuntimeError(
                                    f"{ir.name}: abstract configuration "
                                    f"space exceeded {MAX_CONFIGS} entries"
                                )
                            self.configs.add(frozen)
                            work.append(frozen)
        states = {invalid}
        for config in self.configs:
            states.update(state for state, _many in config)
        self.reachable_states = frozenset(states)

    # -- queries --------------------------------------------------------
    def reachable_from(self, state: int) -> frozenset[int]:
        """Transitive closure of :attr:`edges` from *state* (inclusive)."""
        seen = {state}
        work = [state]
        while work:
            for nxt in self.edges.get(work.pop(), ()):
                if nxt not in seen:
                    seen.add(nxt)
                    work.append(nxt)
        return frozenset(seen)

    def contexts_for(self, state: int, op: int) -> frozenset[frozenset[int]]:
        """Reachable present-sets observed at one ``(state, op)`` cell."""
        return frozenset(self.cell_contexts.get((state, op), ()))
