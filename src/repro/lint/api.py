"""Front end of the static protocol analyzer.

The functions here are what the CLI, the ``verify()`` preflight and the
batch engine call: lint a live :class:`ProtocolSpec`, a DSL source
string, a file on disk, a registry name, or the whole shipped zoo.
Syntax errors in DSL sources are folded into the report as the reserved
``PL000`` diagnostic instead of raising, so one broken file cannot
abort a multi-spec run.
"""

from __future__ import annotations

from importlib import resources
from pathlib import Path
from typing import Sequence

from ..core.protocol import ProtocolSpec
from .context import LintContext
from .model import Diagnostic, LintReport, Location, Severity, sort_diagnostics
from .registry import SYNTAX_RULE, resolve_codes, selected_rules

__all__ = [
    "lint_spec",
    "lint_source",
    "lint_path",
    "lint_protocol",
    "lint_builtin",
    "lint_all",
]


def lint_spec(
    spec: ProtocolSpec,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
    target: str | None = None,
) -> LintReport:
    """Run every selected rule over one specification object."""
    from .. import obs
    from .context import _UNSET

    context = LintContext(spec)
    found: list[Diagnostic] = []
    for registered in selected_rules(select, ignore):
        found.extend(registered.check(context))
    reported: list[Diagnostic] = []
    suppressed: list[Diagnostic] = []
    for diagnostic in found:
        (suppressed if context.suppressed(diagnostic) else reported).append(
            diagnostic
        )
    if reported:
        obs.count("lint.findings", len(reported))
    if context._flow is not _UNSET:  # a flow-sensitive rule ran
        obs.observe("lint.flow.elapsed", context.flow_seconds)
        if context._flow is None:
            obs.count("lint.flow.degraded")
        else:
            obs.count("lint.flow.configs", len(context._flow.configs))
    return LintReport(
        target=target or spec.name or "<spec>",
        artifact=context.artifact,
        diagnostics=sort_diagnostics(reported),
        suppressed=sort_diagnostics(suppressed),
    )


def _syntax_selected(
    select: Sequence[str] | None, ignore: Sequence[str] | None
) -> bool:
    """Whether ``--select``/``--ignore`` keep the PL000 pseudo-rule."""
    keep = resolve_codes(select)
    drop = resolve_codes(ignore) or frozenset()
    return (keep is None or SYNTAX_RULE in keep) and SYNTAX_RULE not in drop


def lint_source(
    text: str,
    *,
    name: str = "unnamed",
    path: str | None = None,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint a DSL source string (parse errors become PL000 findings)."""
    from ..protocols.dsl import DslError, parse_protocol

    target = path or name
    try:
        spec = parse_protocol(text, default_name=name, source_path=path)
    except DslError as exc:
        diagnostics: tuple[Diagnostic, ...] = ()
        if _syntax_selected(select, ignore):
            diagnostics = (
                Diagnostic(
                    rule=SYNTAX_RULE,
                    severity=Severity.ERROR,
                    message=str(exc),
                    location=Location(
                        file=path, line=exc.line_no, col=exc.col
                    ),
                    spec_name=name,
                ),
            )
        return LintReport(target=target, artifact=path, diagnostics=diagnostics)
    return lint_spec(spec, select=select, ignore=ignore, target=target)


def lint_path(
    path: str | Path,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint a specification file (``OSError`` propagates: usage error)."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(
        text,
        name=Path(path).stem,
        path=str(path),
        select=select,
        ignore=ignore,
    )


def lint_protocol(
    name: str,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint a registry protocol by name (``KeyError`` when unknown)."""
    from ..protocols.registry import get_protocol

    return lint_spec(get_protocol(name), select=select, ignore=ignore)


def lint_builtin(
    name: str,
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> LintReport:
    """Lint a DSL specification shipped inside the package."""
    from ..protocols.dsl import builtin_spec_names

    specs = resources.files("repro.protocols") / "specs"
    candidate = specs / f"{name}.proto"
    try:
        text = candidate.read_text(encoding="utf-8")
    except FileNotFoundError:
        known = ", ".join(builtin_spec_names())
        raise KeyError(f"unknown builtin spec {name!r}; known: {known}") from None
    return lint_source(
        text,
        name=f"{name}-dsl",
        path=str(candidate),
        select=select,
        ignore=ignore,
    )


def lint_all(
    *,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[LintReport]:
    """Lint the whole shipped zoo: registry protocols + builtin specs."""
    from ..protocols.dsl import builtin_spec_names
    from ..protocols.registry import protocol_names

    reports = [
        lint_protocol(name, select=select, ignore=ignore)
        for name in protocol_names()
    ]
    reports.extend(
        lint_builtin(name, select=select, ignore=ignore)
        for name in builtin_spec_names()
    )
    return reports
