"""Renderers for lint reports: human text, JSON, SARIF 2.1.0.

All three render a *sequence* of :class:`~repro.lint.model.LintReport`
objects (one per linted specification) so single-spec and ``--all``
invocations share one code path.  The SARIF renderer emits one run with
the full rule catalog in ``tool.driver.rules``, which is what GitHub
code scanning needs to show rule help alongside findings.
"""

from __future__ import annotations

import json
from typing import Sequence

from .model import LintReport, Severity
from .registry import RULES, SYNTAX_RULE, _ensure_rules_loaded

__all__ = ["render_text", "render_json", "render_sarif", "RENDERERS"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render_text(reports: Sequence[LintReport], *, verbose: bool = False) -> str:
    """The human-readable, one-line-per-finding rendering."""
    lines: list[str] = []
    for report in reports:
        for diagnostic in report.diagnostics:
            lines.append(diagnostic.render(report.target))
        if verbose or not report.clean:
            lines.append(report.summary())
    errors = sum(r.errors for r in reports)
    warnings = sum(r.warnings for r in reports)
    infos = sum(r.infos for r in reports)
    suppressed = sum(len(r.suppressed) for r in reports)
    tail = (
        f"{len(reports)} spec{'s' if len(reports) != 1 else ''} checked: "
        f"{errors} error{'s' if errors != 1 else ''}, "
        f"{warnings} warning{'s' if warnings != 1 else ''}, "
        f"{infos} info{'s' if infos != 1 else ''}"
    )
    if suppressed:
        tail += f" ({suppressed} suppressed)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(reports: Sequence[LintReport]) -> str:
    """A machine-readable JSON document (stable key order)."""
    payload = {
        "tool": "repro-lint",
        "reports": [report.to_dict() for report in reports],
        "summary": {
            "specs": len(reports),
            "errors": sum(r.errors for r in reports),
            "warnings": sum(r.warnings for r in reports),
            "infos": sum(r.infos for r in reports),
            "suppressed": sum(len(r.suppressed) for r in reports),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def _sarif_rules() -> list[dict]:
    """The ``tool.driver.rules`` catalog (PL000 plus registered rules)."""
    _ensure_rules_loaded()
    catalog = [
        {
            "id": SYNTAX_RULE,
            "name": "syntax-error",
            "shortDescription": {
                "text": "the specification does not parse as DSL"
            },
            "defaultConfiguration": {"level": "error"},
        }
    ]
    for registered in RULES.values():
        catalog.append(
            {
                "id": registered.id,
                "name": registered.name,
                "shortDescription": {"text": registered.summary},
                "fullDescription": {"text": registered.help_text},
                "defaultConfiguration": {
                    "level": _SARIF_LEVELS[registered.severity]
                },
            }
        )
    return catalog


def render_sarif(reports: Sequence[LintReport]) -> str:
    """A SARIF 2.1.0 log for GitHub code scanning."""
    from .. import __version__

    rules = _sarif_rules()
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results: list[dict] = []
    for report in reports:
        for diagnostic in report.diagnostics:
            location: dict = {}
            if diagnostic.location.file is not None:
                region: dict = {}
                if diagnostic.location.line is not None:
                    region["startLine"] = diagnostic.location.line
                    if diagnostic.location.col is not None:
                        region["startColumn"] = diagnostic.location.col
                location["physicalLocation"] = {
                    "artifactLocation": {"uri": diagnostic.location.file},
                    **({"region": region} if region else {}),
                }
            symbol = diagnostic.location.symbol or diagnostic.spec_name
            location["logicalLocations"] = [
                {
                    "fullyQualifiedName": (
                        f"{diagnostic.spec_name or report.target}.{symbol}"
                        if symbol
                        else (diagnostic.spec_name or report.target)
                    )
                }
            ]
            results.append(
                {
                    "ruleId": diagnostic.rule,
                    "ruleIndex": rule_index.get(diagnostic.rule, -1),
                    "level": _SARIF_LEVELS[diagnostic.severity],
                    "message": {
                        "text": f"[{diagnostic.spec_name or report.target}] "
                        f"{diagnostic.message}"
                    },
                    "locations": [location],
                }
            )
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": __version__,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)


#: ``--format`` name -> renderer.
RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
