"""Shared analysis state handed to every lint rule.

A :class:`LintContext` wraps one :class:`~repro.core.protocol.ProtocolSpec`
and precomputes everything the rules need *without running a symbolic
expansion*:

* the **probe table** -- for every applicable ``(state, op)`` pair and
  every observation context in a small deterministic sample, which DSL
  rule is selected (first-match) or what ``react`` returns.  DSL
  specifications are probed *statically* (guards are evaluated, but no
  :class:`~repro.core.reactions.Outcome` is materialized, so a broken
  ``load cache:`` clause surfaces as a diagnostic instead of an
  exception);
* the per-cache **reachability relation** derived from the probes
  (initiator transitions plus observer reactions);
* location helpers that produce physical (file/line/column) locations
  for DSL specs and symbolic locations for registry specs.

The context sample is the one :meth:`ProtocolSpec.validate` uses
(empty, singletons with ONE/MANY, pairs with MANY) extended with one
targeted context per DSL guard that mentions three or more states, so
first-match shadowing analysis never mistakes a deep guard for dead
code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from ..core.protocol import ProtocolSpec
from ..core.reactions import Ctx
from ..core.symbols import CountCase, Op
from .model import Diagnostic, Location, Severity

__all__ = ["ProbeEntry", "LintContext", "probe_contexts"]

#: Sentinel for "not computed yet" in the lazy IR/flow slots (``None``
#: is a meaningful cached value: "lowering/analysis failed").
_UNSET = object()


@dataclass(frozen=True)
class ProbeEntry:
    """One probed ``(state, op, context)`` cell of the behaviour table."""

    state: str
    op: Op
    ctx: Ctx
    #: Initiator's next state (``None`` when nothing matched / raised).
    next_state: str | None = None
    #: Observer reactions as ``(observer, next, updated)`` triples.
    observers: tuple[tuple[str, str, bool], ...] = ()
    stalled: bool = False
    #: Index into ``DslProtocol._rules`` of the selected rule (DSL only).
    rule_index: int | None = None
    #: ``repr`` of the exception ``react`` raised (registry specs only).
    error: str | None = None

    @property
    def matched(self) -> bool:
        """True iff some behaviour was found for this cell."""
        return self.next_state is not None


def probe_contexts(
    valid: Sequence[str], extra_supports: Sequence[frozenset[str]] = ()
) -> list[Ctx]:
    """The deterministic context sample used by every probe-based rule."""
    contexts: list[Ctx] = [Ctx(frozenset(), CountCase.ZERO)]
    for sym in valid:
        contexts.append(Ctx(frozenset({sym}), CountCase.ONE))
        contexts.append(Ctx(frozenset({sym}), CountCase.MANY))
    for a, b in itertools.combinations(valid, 2):
        contexts.append(Ctx(frozenset({a, b}), CountCase.MANY))
    seen = {c.present for c in contexts}
    for support in extra_supports:
        support = frozenset(s for s in support if s in valid)
        if len(support) >= 3 and support not in seen:
            contexts.append(Ctx(support, CountCase.MANY))
            seen.add(support)
    return contexts


class LintContext:
    """Everything one lint run knows about one specification."""

    def __init__(self, spec: ProtocolSpec) -> None:
        from ..protocols.dsl import DslProtocol  # local: avoid cycles

        self.spec = spec
        #: The compiled DSL object, or ``None`` for registry/in-memory
        #: specifications (rules use this to gate DSL-only checks).
        self.dsl: "DslProtocol | None" = (
            spec if isinstance(spec, DslProtocol) else None
        )
        self._probes: list[ProbeEntry] | None = None
        self._edges: dict[str, frozenset[str]] | None = None
        self._reachable: frozenset[str] | None = None
        self._ir: object = _UNSET
        self._flow: object = _UNSET
        self.flow_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Probe table
    # ------------------------------------------------------------------
    @property
    def probes(self) -> list[ProbeEntry]:
        """The (lazily built) behaviour probe table."""
        if self._probes is None:
            self._probes = self._build_probes()
        return self._probes

    def _guard_supports(self) -> list[frozenset[str]]:
        """Per-rule sets of ``has()`` states (to cover deep guards)."""
        if self.dsl is None:
            return []
        supports = []
        for dsl_rule in self.dsl._rules:
            has_states = frozenset(
                state
                for kind, state in dsl_rule.guard.atoms
                if kind == "has" and state is not None
            )
            supports.append(has_states)
        return supports

    def _build_probes(self) -> list[ProbeEntry]:
        spec = self.spec
        contexts = probe_contexts(spec.valid_states(), self._guard_supports())
        entries: list[ProbeEntry] = []
        for state, op in itertools.product(spec.states, spec.operations):
            if not spec.applicable(state, op):
                continue
            for ctx in contexts:
                entries.append(self._probe_one(state, op, ctx))
        return entries

    def _probe_one(self, state: str, op: Op, ctx: Ctx) -> ProbeEntry:
        if self.dsl is not None:
            for index, dsl_rule in enumerate(self.dsl._rules):
                if (
                    dsl_rule.state == state
                    and dsl_rule.op is op
                    and dsl_rule.guard.evaluate(ctx)
                ):
                    return ProbeEntry(
                        state,
                        op,
                        ctx,
                        next_state=dsl_rule.next_state,
                        observers=dsl_rule.observers,
                        stalled=dsl_rule.stalled,
                        rule_index=index,
                    )
            return ProbeEntry(state, op, ctx)
        try:
            outcome = self.spec.react(state, op, ctx)
        except Exception as exc:  # noqa: BLE001 - folded into diagnostics
            return ProbeEntry(state, op, ctx, error=f"{type(exc).__name__}: {exc}")
        return ProbeEntry(
            state,
            op,
            ctx,
            next_state=outcome.next_state,
            observers=tuple(
                (obs, reaction.next_state, reaction.updated)
                for obs, reaction in outcome.observers.items()
            ),
            stalled=outcome.stalled,
        )

    def probes_for(self, state: str, op: Op) -> list[ProbeEntry]:
        """The probe entries of one ``(state, op)`` pair."""
        return [e for e in self.probes if e.state == state and e.op is op]

    # ------------------------------------------------------------------
    # Guarded-action IR and flow analysis
    # ------------------------------------------------------------------
    @property
    def ir(self):
        """The spec lowered to :class:`~repro.ir.ProtocolIR`, or ``None``.

        ``None`` means lowering failed (e.g. a registry ``react`` that
        raises on some probed context); flow-sensitive rules degrade
        gracefully to their syntactic fallbacks in that case.
        """
        if self._ir is _UNSET:
            from ..ir import lower  # local: avoid import cycles

            try:
                self._ir = lower(self.spec)
            except Exception:  # noqa: BLE001 - degrade, never crash lint
                self._ir = None
        return self._ir

    @property
    def flow(self):
        """The abstract-reachability analysis, or ``None`` on failure."""
        if self._flow is _UNSET:
            from ..obs import clock
            from .flow import FlowAnalysis

            started = clock.monotonic()
            ir = self.ir
            if ir is None:
                self._flow = None
            else:
                try:
                    self._flow = FlowAnalysis(ir)
                except Exception:  # noqa: BLE001 - degrade, never crash
                    self._flow = None
            #: Wall time of lowering + fixpoint (obs: lint.flow.elapsed).
            self.flow_seconds = clock.monotonic() - started
        return self._flow

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    @property
    def edges(self) -> dict[str, frozenset[str]]:
        """Per-cache transition relation derived from the probes.

        Edges are initiator transitions of non-stalled probes plus
        observer reactions whose observer is present in the probed
        context (a cache must actually be in a state to snoop from it).
        """
        if self._edges is None:
            edges: dict[str, set[str]] = {s: set() for s in self.spec.states}
            for entry in self.probes:
                if entry.stalled or entry.next_state is None:
                    continue
                if entry.next_state in edges:
                    edges[entry.state].add(entry.next_state)
                for obs, nxt, _updated in entry.observers:
                    if entry.ctx.has(obs) and obs in edges and nxt in edges:
                        edges[obs].add(nxt)
            self._edges = {s: frozenset(t) for s, t in edges.items()}
        return self._edges

    def reachable_from(self, start: str) -> frozenset[str]:
        """States reachable from *start* (inclusive) via :attr:`edges`."""
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for nxt in self.edges.get(current, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    @property
    def reachable(self) -> frozenset[str]:
        """States reachable from the invalid state via probed behaviour."""
        if self._reachable is None:
            self._reachable = self.reachable_from(self.spec.invalid)
        return self._reachable

    # ------------------------------------------------------------------
    # Location / diagnostic helpers
    # ------------------------------------------------------------------
    @property
    def artifact(self) -> str | None:
        """Path of the DSL source file, when there is one."""
        return self.dsl.source_path if self.dsl is not None else None

    def rule_location(self, rule_index: int) -> Location:
        """Physical location of one compiled DSL rule."""
        assert self.dsl is not None
        dsl_rule = self.dsl._rules[rule_index]
        return Location(
            file=self.artifact,
            line=dsl_rule.line_no,
            col=dsl_rule.col,
            symbol=f"on {dsl_rule.state} {dsl_rule.op.value}",
        )

    def directive_location(self, directive: str) -> Location:
        """Location of a singleton directive (falls back to symbolic)."""
        if self.dsl is not None:
            origin = self.dsl.origins.get(directive)
            if origin is not None:
                return Location(
                    file=self.artifact,
                    line=origin.line,
                    col=origin.col,
                    symbol=directive,
                )
        return Location(symbol=directive)

    def symbolic(self, symbol: str) -> Location:
        """A purely symbolic location (registry specifications)."""
        return Location(symbol=symbol)

    def diag(
        self, rule_id: str, severity: Severity, message: str, location: Location
    ) -> Diagnostic:
        """Build one diagnostic against this specification."""
        return Diagnostic(
            rule=rule_id,
            severity=severity,
            message=message,
            location=location,
            spec_name=self.spec.name,
        )

    # ------------------------------------------------------------------
    def suppressed(self, diagnostic: Diagnostic) -> bool:
        """Whether a ``# lint: ignore[...]`` marker silences the finding."""
        if self.dsl is None or diagnostic.location.line is None:
            return False
        ids = self.dsl.lint_suppressions.get(diagnostic.location.line)
        if ids is None:
            return False
        return not ids or diagnostic.rule in ids
