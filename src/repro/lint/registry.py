"""The pluggable rule registry of the static protocol analyzer.

Rules are plain functions registered with the :func:`rule` decorator::

    @rule("PL001", Severity.ERROR, "unreachable-state",
          "state has no transition or reaction path from the invalid state")
    def check_unreachable(ctx: LintContext) -> Iterator[Diagnostic]:
        ...

Every rule is addressable by its ``PLxxx`` code (and its kebab-case
name) in ``--select`` / ``--ignore``, and its metadata feeds the SARIF
``tool.driver.rules`` array.  Importing :mod:`repro.lint.rules`
populates the registry with the built-in rule set; downstream code can
register additional rules the same way.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, TYPE_CHECKING

from .model import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import LintContext

__all__ = [
    "LintRule",
    "RULES",
    "SYNTAX_RULE",
    "rule",
    "resolve_codes",
    "selected_rules",
]

_CODE_RE = re.compile(r"^PL\d{3}$")

#: Rule id reserved for DSL parse failures (reported by the front end,
#: not by a registered checker function).
SYNTAX_RULE = "PL000"


@dataclass(frozen=True)
class LintRule:
    """One registered rule: metadata plus the checker function."""

    id: str
    name: str
    severity: Severity
    summary: str
    check: Callable[["LintContext"], Iterator[Diagnostic]]
    #: A minimal DSL specification triggering the rule (``--explain``).
    example: str = ""

    @property
    def help_text(self) -> str:
        """Long description (the checker's docstring, if any)."""
        return (self.check.__doc__ or self.summary).strip()


#: All registered rules, keyed by ``PLxxx`` id, in registration order.
RULES: dict[str, LintRule] = {}


def rule(
    id: str,
    severity: Severity,
    name: str,
    summary: str,
    *,
    example: str = "",
) -> Callable[
    [Callable[["LintContext"], Iterator[Diagnostic]]],
    Callable[["LintContext"], Iterator[Diagnostic]],
]:
    """Register a checker function under a ``PLxxx`` code."""
    if not _CODE_RE.match(id):
        raise ValueError(f"rule id {id!r} does not match PLxxx")

    def decorate(
        check: Callable[["LintContext"], Iterator[Diagnostic]],
    ) -> Callable[["LintContext"], Iterator[Diagnostic]]:
        if id in RULES:
            raise ValueError(f"duplicate rule id {id}")
        RULES[id] = LintRule(
            id=id,
            name=name,
            severity=severity,
            summary=summary,
            check=check,
            example=example,
        )
        return check

    return decorate


def _ensure_rules_loaded() -> None:
    """Populate the registry with the built-in rule set (idempotent)."""
    from . import rules  # noqa: F401 - imported for its registrations


def resolve_codes(codes: Iterable[str] | None) -> frozenset[str] | None:
    """Normalize a ``--select``/``--ignore`` argument to rule ids.

    Accepts ``PLxxx`` codes and kebab-case rule names, comma- or
    space-separated; raises ``KeyError`` for anything unknown.
    """
    if codes is None:
        return None
    _ensure_rules_loaded()
    by_name = {r.name: r.id for r in RULES.values()}
    resolved: set[str] = set()
    flat: list[str] = []
    for chunk in codes:
        flat.extend(p for p in re.split(r"[,\s]+", chunk) if p)
    for code in flat:
        if code in RULES or code == SYNTAX_RULE:
            resolved.add(code)
        elif code in by_name:
            resolved.add(by_name[code])
        else:
            known = ", ".join(sorted(RULES))
            raise KeyError(f"unknown lint rule {code!r}; known: {known}")
    return frozenset(resolved)


def selected_rules(
    select: Sequence[str] | None = None, ignore: Sequence[str] | None = None
) -> list[LintRule]:
    """The registered rules that survive ``--select``/``--ignore``."""
    _ensure_rules_loaded()
    keep = resolve_codes(select)
    drop = resolve_codes(ignore) or frozenset()
    return [
        r
        for r in RULES.values()
        if (keep is None or r.id in keep) and r.id not in drop
    ]
