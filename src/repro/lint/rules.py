"""The built-in rule set of the static protocol analyzer.

Each rule is a generator over :class:`~repro.lint.model.Diagnostic`
registered with :func:`~repro.lint.registry.rule`.  Rules operate on a
:class:`~repro.lint.context.LintContext` -- a probed, but never
expanded, view of one specification -- so a statically broken protocol
is diagnosed without paying for (or crashing) a symbolic verification.

Rule ids are stable: ``PL000`` is reserved for DSL parse errors (emitted
by the front end in :mod:`repro.lint.api`), ``PL001``--``PL011`` are the
checkers below.  See ``docs/LINT.md`` for the full catalog with
rationale and examples.
"""

from __future__ import annotations

from typing import Iterator

from ..core.errors import ForbidMultiple, ForbidTogether
from ..core.symbols import Op
from .context import LintContext
from .model import Diagnostic, Location, Severity
from .registry import rule

__all__: list[str] = []


def _rule_or_symbolic(ctx: LintContext, entry_rule_index: int | None, symbol: str):
    """Best location for a finding tied to one probe entry."""
    if ctx.dsl is not None and entry_rule_index is not None:
        return ctx.rule_location(entry_rule_index)
    return ctx.symbolic(symbol)


def _ctx_text(present: frozenset[str]) -> str:
    """Human rendering of an observation context."""
    return "{" + ", ".join(sorted(present)) + "}" if present else "{}"


# ----------------------------------------------------------------------
# PL001 -- unreachable state
# ----------------------------------------------------------------------
@rule("PL001", Severity.ERROR, "unreachable-state",
      "state has no transition or reaction path from the invalid state")
def check_unreachable_state(ctx: LintContext) -> Iterator[Diagnostic]:
    """A state no cache can ever enter.

    Every cache starts with no copy (the invalid state, paper Section
    2.1); a state with no initiator-transition or observer-reaction path
    from it is dead weight -- usually a transcription error in the
    transition table.  Reachability is computed over the probe table:
    initiator edges of non-stalled outcomes plus observer edges whose
    observer is present in the probed context.
    """
    for state in ctx.spec.states:
        if state not in ctx.reachable:
            yield ctx.diag(
                "PL001",
                Severity.ERROR,
                f"state {state!r} is unreachable from the invalid state "
                f"{ctx.spec.invalid!r} (no transition or observer reaction "
                "enters it)",
                ctx.directive_location("states"),
            )


# ----------------------------------------------------------------------
# PL002 -- shadowed guard (DSL only)
# ----------------------------------------------------------------------
@rule("PL002", Severity.WARNING, "shadowed-guard",
      "an earlier rule matches every context this rule could match")
def check_shadowed_guard(ctx: LintContext) -> Iterator[Diagnostic]:
    """A DSL rule that first-match-wins order makes unselectable.

    Guards are evaluated in declaration order; if every context in the
    probe sample that satisfies a rule's guard is already claimed by an
    earlier rule of the same ``(state, op)``, the later rule is dead --
    typically a mis-ordered ``if any`` before an ``if has(...)``.
    Rules excluded from the alphabet or by ``restrict`` are PL010's
    business, not this rule's.
    """
    if ctx.dsl is None:
        return
    selected = {e.rule_index for e in ctx.probes if e.rule_index is not None}
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        if index in selected:
            continue
        if dsl_rule.op not in ctx.spec.operations:
            continue  # PL010
        if not ctx.spec.applicable(dsl_rule.state, dsl_rule.op):
            continue  # PL010
        earlier = [
            r.line_no
            for r in ctx.dsl._rules[:index]
            if r.state == dsl_rule.state and r.op is dsl_rule.op
        ]
        detail = (
            f" (earlier rule{'s' if len(earlier) > 1 else ''} at line"
            f"{'s' if len(earlier) > 1 else ''} "
            f"{', '.join(map(str, earlier))} match first)"
            if earlier
            else ""
        )
        yield ctx.diag(
            "PL002",
            Severity.WARNING,
            f"rule 'on {dsl_rule.state} {dsl_rule.op.value}"
            f"{' if ' + dsl_rule.guard.text if dsl_rule.guard.atoms else ''}' "
            f"is never selected{detail}",
            ctx.rule_location(index),
        )


# ----------------------------------------------------------------------
# PL003 -- non-exhaustive operation
# ----------------------------------------------------------------------
@rule("PL003", Severity.ERROR, "non-exhaustive-op",
      "an applicable (state, operation) pair has no behaviour in some context")
def check_non_exhaustive(ctx: LintContext) -> Iterator[Diagnostic]:
    """A hole in the transition function.

    The paper's Definition 1 makes the per-cache FSM total over its
    alphabet: every valid state must answer every applicable operation
    in every observation context (completing it or stalling).  A probed
    cell with no matching DSL rule -- or a registry ``react`` that
    raises -- means verification would crash mid-expansion.
    """
    seen: set[tuple[str, Op]] = set()
    for entry in ctx.probes:
        if entry.matched or (entry.state, entry.op) in seen:
            continue
        seen.add((entry.state, entry.op))
        if entry.error is not None:
            message = (
                f"react({entry.state}, {entry.op.value}) raised in context "
                f"{_ctx_text(entry.ctx.present)}: {entry.error}"
            )
        else:
            message = (
                f"no rule covers ({entry.state}, {entry.op.value}) in context "
                f"{_ctx_text(entry.ctx.present)} (add a rule or a 'stall')"
            )
        location = ctx.symbolic(f"react({entry.state}, {entry.op.value})")
        if ctx.dsl is not None:
            near = ctx.dsl.rules_for(entry.state, entry.op)
            if near:
                location = ctx.rule_location(ctx.dsl._rules.index(near[-1]))
        yield ctx.diag("PL003", Severity.ERROR, message, location)


# ----------------------------------------------------------------------
# PL004 -- unknown state reference
# ----------------------------------------------------------------------
@rule("PL004", Severity.ERROR, "unknown-state-ref",
      "a declaration references a state symbol that is not in Q")
def check_unknown_state_ref(ctx: LintContext) -> Iterator[Diagnostic]:
    """Declarative metadata naming states outside the FSM's alphabet.

    Covers duplicate state symbols, an invalid state missing from Q,
    and ``forbid``/``owners``/``exclusive``/``shared-fill``/``restrict``
    entries naming unknown states.  The DSL parser rejects most of
    these up front; the rule is the registry-spec equivalent (and a
    safety net for hand-built ``ProtocolSpec`` objects).
    """
    spec = ctx.spec
    states = set(spec.states)
    if len(states) != len(spec.states):
        duplicates = sorted(
            {s for s in spec.states if spec.states.count(s) > 1}
        )
        yield ctx.diag(
            "PL004",
            Severity.ERROR,
            f"duplicate state symbol{'s' if len(duplicates) > 1 else ''}: "
            f"{', '.join(duplicates)}",
            ctx.directive_location("states"),
        )
    if spec.invalid not in states:
        yield ctx.diag(
            "PL004",
            Severity.ERROR,
            f"invalid state {spec.invalid!r} is not among the declared states",
            ctx.directive_location("invalid"),
        )
    for index, pattern in enumerate(spec.error_patterns):
        if isinstance(pattern, ForbidMultiple):
            symbols = (pattern.symbol,)
        elif isinstance(pattern, ForbidTogether):
            symbols = (pattern.a, pattern.b)
        else:  # pragma: no cover - future pattern kinds
            continue
        for symbol in symbols:
            if symbol not in states:
                location = ctx.symbolic(f"error_patterns[{index}]")
                if ctx.dsl is not None and index < len(ctx.dsl.forbid_origins):
                    origin = ctx.dsl.forbid_origins[index]
                    location = Location(
                        file=ctx.artifact, line=origin.line, col=origin.col,
                        symbol="forbid",
                    )
                yield ctx.diag(
                    "PL004",
                    Severity.ERROR,
                    f"forbidden-pattern references unknown state {symbol!r}",
                    location,
                )
    for attr in ("owner_states", "exclusive_states"):
        for symbol in getattr(spec, attr):
            if symbol not in states:
                yield ctx.diag(
                    "PL004",
                    Severity.ERROR,
                    f"{attr} references unknown state {symbol!r}",
                    ctx.symbolic(attr),
                )
    if spec.shared_fill_state is not None and spec.shared_fill_state not in states:
        yield ctx.diag(
            "PL004",
            Severity.ERROR,
            f"shared_fill_state references unknown state "
            f"{spec.shared_fill_state!r}",
            ctx.symbolic("shared_fill_state"),
        )


# ----------------------------------------------------------------------
# PL005 -- sharing-detection mismatch (DSL only)
# ----------------------------------------------------------------------
@rule("PL005", Severity.ERROR, "sharing-mismatch",
      "guards read the sharing line but sharing-detection is off")
def check_sharing_mismatch(ctx: LintContext) -> Iterator[Diagnostic]:
    """Characteristic-function mismatch (paper Definition 5).

    ``any``/``none`` guards are exactly the sharing-detection wire: a
    cache can only branch on "some other cache has a copy" when the
    protocol declares ``F`` as the sharing-detection function.  With
    ``sharing-detection off`` such guards describe hardware the machine
    does not have.  ``has(S)``/``!has(S)`` atoms are *not* flagged:
    they model reactions observed on the bus (a Dirty copy answering a
    miss), which need no dedicated wire.
    """
    if ctx.dsl is None or ctx.spec.uses_sharing_detection:
        return
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        wired = sorted(
            {kind for kind, _ in dsl_rule.guard.atoms if kind in ("any", "none")}
        )
        if wired:
            yield ctx.diag(
                "PL005",
                Severity.ERROR,
                f"guard uses {'/'.join(wired)!s} but sharing-detection is off "
                "(enable it or rewrite the guard with has(...))",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL006 -- unsatisfiable supplier (DSL only)
# ----------------------------------------------------------------------
@rule("PL006", Severity.ERROR, "unsatisfiable-supplier",
      "a selected rule loads or writes back from a copy its context lacks")
def check_unsatisfiable_supplier(ctx: LintContext) -> Iterator[Diagnostic]:
    """A data clause whose supplier cannot exist when the rule fires.

    ``load cache:S`` and ``writeback S`` promise a cache in state ``S``
    supplies or flushes the block; if the probe sample selects the rule
    in a context with no such copy, the promise is broken at runtime
    (a ``DslError`` mid-verification).  The usual culprit is a missing
    ``if has(S)`` guard or mis-ordered rules.
    """
    if ctx.dsl is None:
        return
    flagged: set[int] = set()
    for entry in ctx.probes:
        index = entry.rule_index
        if index is None or index in flagged:
            continue
        dsl_rule = ctx.dsl._rules[index]
        if dsl_rule.stalled:
            continue
        if (
            dsl_rule.load is not None
            and dsl_rule.load.kind == "cache"
            and not any(entry.ctx.has(c) for c in dsl_rule.load.candidates)
        ):
            flagged.add(index)
            yield ctx.diag(
                "PL006",
                Severity.ERROR,
                f"rule loads from cache:"
                f"{'|'.join(dsl_rule.load.candidates)} but is selected in "
                f"context {_ctx_text(entry.ctx.present)} with no such copy "
                "(guard it with 'if has(...)')",
                ctx.rule_location(index),
            )
            continue
        writeback = dsl_rule.writeback
        if (
            writeback is not None
            and writeback in ctx.spec.states
            and not entry.ctx.has(writeback)
        ):
            flagged.add(index)
            yield ctx.diag(
                "PL006",
                Severity.ERROR,
                f"rule writes back from {writeback} but is selected in "
                f"context {_ctx_text(entry.ctx.present)} with no such copy "
                "(guard it with 'if has(...)')",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL007 -- invalid observer
# ----------------------------------------------------------------------
@rule("PL007", Severity.ERROR, "invalid-observer",
      "an observer reaction is keyed by, or targets, a non-valid state")
def check_invalid_observer(ctx: LintContext) -> Iterator[Diagnostic]:
    """Observer maps that mention states outside the valid set.

    A reaction keyed by the invalid state is meaningless (a cache with
    no copy has nothing to snoop *from*), and one keyed by -- or moving
    to -- an unknown symbol would corrupt the composite state.  The DSL
    parser enforces this syntactically; the rule catches registry specs
    whose ``react`` builds observer dictionaries dynamically.
    """
    spec = ctx.spec
    seen: set[tuple[str, Op, str, str]] = set()
    for entry in ctx.probes:
        for obs, nxt, _updated in entry.observers:
            key = (entry.state, entry.op, obs, nxt)
            if key in seen:
                continue
            problem: str | None = None
            if obs == spec.invalid:
                problem = f"reaction keyed by the invalid state {obs!r}"
            elif obs not in spec.states:
                problem = f"reaction keyed by unknown state {obs!r}"
            elif nxt not in spec.states:
                problem = f"observer {obs} moves to unknown state {nxt!r}"
            if problem is None:
                continue
            seen.add(key)
            yield ctx.diag(
                "PL007",
                Severity.ERROR,
                f"react({entry.state}, {entry.op.value}): {problem}",
                _rule_or_symbolic(
                    ctx,
                    entry.rule_index,
                    f"react({entry.state}, {entry.op.value})",
                ),
            )


# ----------------------------------------------------------------------
# PL008 -- stall cycle heuristic
# ----------------------------------------------------------------------
@rule("PL008", Severity.WARNING, "stall-cycle",
      "an operation stalls in a state with no non-stall exit path")
def check_stall_cycle(ctx: LintContext) -> Iterator[Diagnostic]:
    """Deadlock smell, after Sethi et al.'s flow-based analysis.

    If every probed context stalls operation *op* in state *s*, the
    issuing processor can only make progress if *other* operations can
    move the cache (or an observer reaction can move it) to a state
    where *op* eventually completes.  When no such state is reachable
    from *s*, the stall is permanent -- the static shadow of a
    deadlock.  Heuristic: the probe sample under-approximates contexts,
    so the rule warns rather than errors.
    """
    completes: set[tuple[str, Op]] = set()
    always_stalls: set[tuple[str, Op]] = set()
    for state, op in {(e.state, e.op) for e in ctx.probes}:
        entries = ctx.probes_for(state, op)
        if any(e.matched and not e.stalled for e in entries):
            completes.add((state, op))
        elif entries and all(e.stalled for e in entries):
            always_stalls.add((state, op))
    for state, op in sorted(always_stalls, key=lambda p: (p[0], p[1].value)):
        escape = ctx.reachable_from(state)
        if any((other, op) in completes for other in escape):
            continue
        location = ctx.symbolic(f"react({state}, {op.value})")
        if ctx.dsl is not None:
            stalling = [
                r for r in ctx.dsl.rules_for(state, op) if r.stalled
            ]
            if stalling:
                location = ctx.rule_location(ctx.dsl._rules.index(stalling[0]))
        yield ctx.diag(
            "PL008",
            Severity.WARNING,
            f"operation {op.value} always stalls in state {state} and no "
            "reachable state completes it (possible deadlock)",
            location,
        )


# ----------------------------------------------------------------------
# PL009 -- no-op rule (DSL only)
# ----------------------------------------------------------------------
@rule("PL009", Severity.INFO, "no-op-rule",
      "a guarded rule is a self-loop with no effects")
def check_no_op_rule(ctx: LintContext) -> Iterator[Diagnostic]:
    """A guarded transition that changes nothing.

    Unguarded self-loops are ordinary (a read hit stays put); a
    *guarded* self-loop with no data clauses and no observers does
    exactly what the fall-through rule would -- the guard is either
    redundant or the author forgot the effect it was written to gate.
    """
    if ctx.dsl is None:
        return
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        if (
            dsl_rule.guard.atoms
            and not dsl_rule.stalled
            and dsl_rule.next_state == dsl_rule.state
            and dsl_rule.load is None
            and dsl_rule.writeback is None
            and not dsl_rule.write_through
            and not dsl_rule.observers
        ):
            yield ctx.diag(
                "PL009",
                Severity.INFO,
                f"guarded rule 'on {dsl_rule.state} {dsl_rule.op.value} if "
                f"{dsl_rule.guard.text}' is a self-loop with no effects "
                "(drop the guard or add the missing clauses)",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL010 -- dead rule (DSL only)
# ----------------------------------------------------------------------
@rule("PL010", Severity.WARNING, "dead-rule",
      "a rule's operation is outside the alphabet or excluded by restrict")
def check_dead_rule(ctx: LintContext) -> Iterator[Diagnostic]:
    """A rule that applicability filtering removes before matching.

    ``operations`` narrows the alphabet and ``restrict`` narrows the
    states an operation may be issued from; a rule for an excluded
    combination compiles but can never fire.  Replacement rules for the
    invalid state fall in the same bucket (nothing to replace).
    """
    if ctx.dsl is None:
        return
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        if dsl_rule.op not in ctx.spec.operations:
            yield ctx.diag(
                "PL010",
                Severity.WARNING,
                f"rule for operation {dsl_rule.op.value} is dead: the "
                "operation is not in the declared alphabet",
                ctx.rule_location(index),
            )
        elif not ctx.spec.applicable(dsl_rule.state, dsl_rule.op):
            yield ctx.diag(
                "PL010",
                Severity.WARNING,
                f"rule 'on {dsl_rule.state} {dsl_rule.op.value}' is dead: "
                f"{dsl_rule.op.value} is not applicable from "
                f"{dsl_rule.state} (restrict directive or replacement from "
                "the invalid state)",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL011 -- unused sharing detection (DSL only)
# ----------------------------------------------------------------------
@rule("PL011", Severity.WARNING, "unused-sharing",
      "sharing-detection is on but no guard reads the sharing line")
def check_unused_sharing(ctx: LintContext) -> Iterator[Diagnostic]:
    """Declared hardware nobody consults.

    ``sharing-detection on`` selects the non-null characteristic
    function (paper Definition 5) -- extra hardware on the bus.  If no
    guard ever reads the line (``any``/``none``), the declaration
    changes verification results for no behavioural reason; the
    protocol is really a null-F protocol.
    """
    if ctx.dsl is None or not ctx.spec.uses_sharing_detection:
        return
    for dsl_rule in ctx.dsl._rules:
        if any(kind in ("any", "none") for kind, _ in dsl_rule.guard.atoms):
            return
    yield ctx.diag(
        "PL011",
        Severity.WARNING,
        "sharing-detection is on but no guard uses any/none; declare "
        "'sharing-detection off' unless the sharing line is intentional",
        ctx.directive_location("sharing-detection"),
    )
