"""The built-in rule set of the static protocol analyzer.

Each rule is a generator over :class:`~repro.lint.model.Diagnostic`
registered with :func:`~repro.lint.registry.rule`.  Rules operate on a
:class:`~repro.lint.context.LintContext` -- a probed, but never
expanded, view of one specification -- so a statically broken protocol
is diagnosed without paying for (or crashing) a symbolic verification.

Rule ids are stable: ``PL000`` is reserved for DSL parse errors (emitted
by the front end in :mod:`repro.lint.api`), ``PL001``--``PL011`` are the
probe-based checkers, ``PL012``--``PL015`` are flow-sensitive: they
consult the abstract-reachability analysis over the guarded-action IR
(:mod:`repro.lint.flow`) and degrade gracefully (fall back or stay
silent) when lowering fails.  The flow analysis also *demotes* false
positives of the probe-based rules: PL002 skips rules the fixpoint
proves selectable, and PL008 only warns about stalls that are
permanent under abstract reachability.  See ``docs/LINT.md`` for the
full catalog with rationale and examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..core.errors import ForbidMultiple, ForbidTogether
from ..core.symbols import Op
from .context import LintContext
from .model import Diagnostic, Location, Severity
from .registry import rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .flow import FlowAnalysis

__all__: list[str] = []


def _rule_or_symbolic(ctx: LintContext, entry_rule_index: int | None, symbol: str):
    """Best location for a finding tied to one probe entry."""
    if ctx.dsl is not None and entry_rule_index is not None:
        return ctx.rule_location(entry_rule_index)
    return ctx.symbolic(symbol)


def _ctx_text(present: frozenset[str]) -> str:
    """Human rendering of an observation context."""
    return "{" + ", ".join(sorted(present)) + "}" if present else "{}"


# ----------------------------------------------------------------------
# Minimal triggering specifications (``repro lint --explain PLxxx``).
# Registry-only rules (PL004, PL007) have no DSL trigger and keep the
# empty default.
# ----------------------------------------------------------------------
_EX_UNREACHABLE = """\
protocol unreachable
states I S E
invalid I
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""

_EX_SHADOWED = """\
protocol shadowed
states I S
invalid I
sharing-detection on
on I R if any -> S load memory
on I R if has(S) -> S load cache:S ; S => S
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""

_EX_HOLE = """\
protocol hole
states I S
invalid I
sharing-detection on
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W if any -> S writethrough ; all => I
on S Z -> I
"""

_EX_NOWIRE = """\
protocol nowire
states I S
invalid I
sharing-detection off
on I R if any -> S load memory
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""

_EX_BROKEN_SUPPLIER = """\
protocol broken-supplier
states I S D
invalid I
on I R -> S load cache:D
on I W -> D load memory ; all => I
on S R -> S
on S W -> D ; all => I
on S Z -> I
on D R -> D
on D W -> D
on D Z -> I writeback self
"""

_EX_DEADLOCK = """\
protocol deadlock
operations R W Z L
states I S
invalid I
on I R -> S load memory
on I W -> S load memory
on I L -> stall
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
on S L -> stall
"""

_EX_POINTLESS_GUARD = """\
protocol pointless-guard
states I S
invalid I
sharing-detection on
on I R -> S load memory
on I W -> S load memory
on S R if any -> S
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""

_EX_DEAD_RULE = """\
protocol deadrule
states I S
invalid I
restrict W only-from S
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""

_EX_WIRE_UNUSED = """\
protocol wire-unused
states I S
invalid I
sharing-detection on
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""

#: State E is probe-reachable (the singleton context {E} selects the
#: guarded fill), but no abstractly reachable configuration ever
#: contains E, so its rules are dead and the has(E) guard vacuous.
_EX_FLOW_DEAD = """\
protocol flowdead
states I S E
invalid I
on I R if has(E) -> E load cache:E
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
on E R -> E
on E W -> E
on E Z -> I
"""

#: A silent write hit while sibling copies provably coexist.
_EX_RACEY = """\
protocol racey
states I V
invalid I
on I R -> V load memory
on I W -> V load memory
on V R -> V
on V W -> V
on V Z -> I
"""

_EX_VACUOUS = """\
protocol vacuous
states I S
invalid I
sharing-detection on
on I R if any & none -> S load memory
on I R -> S load memory
on I W -> S load memory
on S R -> S
on S W -> S writethrough ; all => I
on S Z -> I
"""


# ----------------------------------------------------------------------
# PL001 -- unreachable state
# ----------------------------------------------------------------------
@rule("PL001", Severity.ERROR, "unreachable-state",
      "state has no transition or reaction path from the invalid state",
      example=_EX_UNREACHABLE)
def check_unreachable_state(ctx: LintContext) -> Iterator[Diagnostic]:
    """A state no cache can ever enter.

    Every cache starts with no copy (the invalid state, paper Section
    2.1); a state with no initiator-transition or observer-reaction path
    from it is dead weight -- usually a transcription error in the
    transition table.  Reachability is computed over the probe table:
    initiator edges of non-stalled outcomes plus observer edges whose
    observer is present in the probed context.
    """
    for state in ctx.spec.states:
        if state not in ctx.reachable:
            yield ctx.diag(
                "PL001",
                Severity.ERROR,
                f"state {state!r} is unreachable from the invalid state "
                f"{ctx.spec.invalid!r} (no transition or observer reaction "
                "enters it)",
                ctx.directive_location("states"),
            )


# ----------------------------------------------------------------------
# PL002 -- shadowed guard (DSL only)
# ----------------------------------------------------------------------
@rule("PL002", Severity.WARNING, "shadowed-guard",
      "an earlier rule matches every context this rule could match",
      example=_EX_SHADOWED)
def check_shadowed_guard(ctx: LintContext) -> Iterator[Diagnostic]:
    """A DSL rule that first-match-wins order makes unselectable.

    Guards are evaluated in declaration order; if every context in the
    probe sample that satisfies a rule's guard is already claimed by an
    earlier rule of the same ``(state, op)``, the later rule is dead --
    typically a mis-ordered ``if any`` before an ``if has(...)``.
    Rules excluded from the alphabet or by ``restrict`` are PL010's
    business, not this rule's.

    The probe sample under-approximates contexts, so the flow analysis
    is consulted as a second chance: a rule the abstract-reachability
    fixpoint proves selectable in some reachable configuration is never
    flagged, even when every sampled context misses it.
    """
    if ctx.dsl is None:
        return
    selected = {e.rule_index for e in ctx.probes if e.rule_index is not None}
    flow = ctx.flow
    if flow is not None:
        for t_index in flow.selected:
            origin = flow.ir.transitions[t_index].origin
            if origin is not None:
                selected.add(origin)
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        if index in selected:
            continue
        if dsl_rule.op not in ctx.spec.operations:
            continue  # PL010
        if not ctx.spec.applicable(dsl_rule.state, dsl_rule.op):
            continue  # PL010
        earlier = [
            r.line_no
            for r in ctx.dsl._rules[:index]
            if r.state == dsl_rule.state and r.op is dsl_rule.op
        ]
        detail = (
            f" (earlier rule{'s' if len(earlier) > 1 else ''} at line"
            f"{'s' if len(earlier) > 1 else ''} "
            f"{', '.join(map(str, earlier))} match first)"
            if earlier
            else ""
        )
        yield ctx.diag(
            "PL002",
            Severity.WARNING,
            f"rule 'on {dsl_rule.state} {dsl_rule.op.value}"
            f"{' if ' + dsl_rule.guard.text if dsl_rule.guard.atoms else ''}' "
            f"is never selected{detail}",
            ctx.rule_location(index),
        )


# ----------------------------------------------------------------------
# PL003 -- non-exhaustive operation
# ----------------------------------------------------------------------
@rule("PL003", Severity.ERROR, "non-exhaustive-op",
      "an applicable (state, operation) pair has no behaviour in some context",
      example=_EX_HOLE)
def check_non_exhaustive(ctx: LintContext) -> Iterator[Diagnostic]:
    """A hole in the transition function.

    The paper's Definition 1 makes the per-cache FSM total over its
    alphabet: every valid state must answer every applicable operation
    in every observation context (completing it or stalling).  A probed
    cell with no matching DSL rule -- or a registry ``react`` that
    raises -- means verification would crash mid-expansion.
    """
    seen: set[tuple[str, Op]] = set()
    for entry in ctx.probes:
        if entry.matched or (entry.state, entry.op) in seen:
            continue
        seen.add((entry.state, entry.op))
        if entry.error is not None:
            message = (
                f"react({entry.state}, {entry.op.value}) raised in context "
                f"{_ctx_text(entry.ctx.present)}: {entry.error}"
            )
        else:
            message = (
                f"no rule covers ({entry.state}, {entry.op.value}) in context "
                f"{_ctx_text(entry.ctx.present)} (add a rule or a 'stall')"
            )
        location = ctx.symbolic(f"react({entry.state}, {entry.op.value})")
        if ctx.dsl is not None:
            near = ctx.dsl.rules_for(entry.state, entry.op)
            if near:
                location = ctx.rule_location(ctx.dsl._rules.index(near[-1]))
        yield ctx.diag("PL003", Severity.ERROR, message, location)


# ----------------------------------------------------------------------
# PL004 -- unknown state reference
# ----------------------------------------------------------------------
@rule("PL004", Severity.ERROR, "unknown-state-ref",
      "a declaration references a state symbol that is not in Q")
def check_unknown_state_ref(ctx: LintContext) -> Iterator[Diagnostic]:
    """Declarative metadata naming states outside the FSM's alphabet.

    Covers duplicate state symbols, an invalid state missing from Q,
    and ``forbid``/``owners``/``exclusive``/``shared-fill``/``restrict``
    entries naming unknown states.  The DSL parser rejects most of
    these up front; the rule is the registry-spec equivalent (and a
    safety net for hand-built ``ProtocolSpec`` objects).
    """
    spec = ctx.spec
    states = set(spec.states)
    if len(states) != len(spec.states):
        duplicates = sorted(
            {s for s in spec.states if spec.states.count(s) > 1}
        )
        yield ctx.diag(
            "PL004",
            Severity.ERROR,
            f"duplicate state symbol{'s' if len(duplicates) > 1 else ''}: "
            f"{', '.join(duplicates)}",
            ctx.directive_location("states"),
        )
    if spec.invalid not in states:
        yield ctx.diag(
            "PL004",
            Severity.ERROR,
            f"invalid state {spec.invalid!r} is not among the declared states",
            ctx.directive_location("invalid"),
        )
    for index, pattern in enumerate(spec.error_patterns):
        if isinstance(pattern, ForbidMultiple):
            symbols = (pattern.symbol,)
        elif isinstance(pattern, ForbidTogether):
            symbols = (pattern.a, pattern.b)
        else:  # pragma: no cover - future pattern kinds
            continue
        for symbol in symbols:
            if symbol not in states:
                location = ctx.symbolic(f"error_patterns[{index}]")
                if ctx.dsl is not None and index < len(ctx.dsl.forbid_origins):
                    origin = ctx.dsl.forbid_origins[index]
                    location = Location(
                        file=ctx.artifact, line=origin.line, col=origin.col,
                        symbol="forbid",
                    )
                yield ctx.diag(
                    "PL004",
                    Severity.ERROR,
                    f"forbidden-pattern references unknown state {symbol!r}",
                    location,
                )
    for attr in ("owner_states", "exclusive_states"):
        for symbol in getattr(spec, attr):
            if symbol not in states:
                yield ctx.diag(
                    "PL004",
                    Severity.ERROR,
                    f"{attr} references unknown state {symbol!r}",
                    ctx.symbolic(attr),
                )
    if spec.shared_fill_state is not None and spec.shared_fill_state not in states:
        yield ctx.diag(
            "PL004",
            Severity.ERROR,
            f"shared_fill_state references unknown state "
            f"{spec.shared_fill_state!r}",
            ctx.symbolic("shared_fill_state"),
        )


# ----------------------------------------------------------------------
# PL005 -- sharing-detection mismatch (DSL only)
# ----------------------------------------------------------------------
@rule("PL005", Severity.ERROR, "sharing-mismatch",
      "guards read the sharing line but sharing-detection is off",
      example=_EX_NOWIRE)
def check_sharing_mismatch(ctx: LintContext) -> Iterator[Diagnostic]:
    """Characteristic-function mismatch (paper Definition 5).

    ``any``/``none`` guards are exactly the sharing-detection wire: a
    cache can only branch on "some other cache has a copy" when the
    protocol declares ``F`` as the sharing-detection function.  With
    ``sharing-detection off`` such guards describe hardware the machine
    does not have.  ``has(S)``/``!has(S)`` atoms are *not* flagged:
    they model reactions observed on the bus (a Dirty copy answering a
    miss), which need no dedicated wire.
    """
    if ctx.dsl is None or ctx.spec.uses_sharing_detection:
        return
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        wired = sorted(
            {kind for kind, _ in dsl_rule.guard.atoms if kind in ("any", "none")}
        )
        if wired:
            yield ctx.diag(
                "PL005",
                Severity.ERROR,
                f"guard uses {'/'.join(wired)!s} but sharing-detection is off "
                "(enable it or rewrite the guard with has(...))",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL006 -- unsatisfiable supplier (DSL only)
# ----------------------------------------------------------------------
@rule("PL006", Severity.ERROR, "unsatisfiable-supplier",
      "a selected rule loads or writes back from a copy its context lacks",
      example=_EX_BROKEN_SUPPLIER)
def check_unsatisfiable_supplier(ctx: LintContext) -> Iterator[Diagnostic]:
    """A data clause whose supplier cannot exist when the rule fires.

    ``load cache:S`` and ``writeback S`` promise a cache in state ``S``
    supplies or flushes the block; if the probe sample selects the rule
    in a context with no such copy, the promise is broken at runtime
    (a ``DslError`` mid-verification).  The usual culprit is a missing
    ``if has(S)`` guard or mis-ordered rules.
    """
    if ctx.dsl is None:
        return
    flagged: set[int] = set()
    for entry in ctx.probes:
        index = entry.rule_index
        if index is None or index in flagged:
            continue
        dsl_rule = ctx.dsl._rules[index]
        if dsl_rule.stalled:
            continue
        if (
            dsl_rule.load is not None
            and dsl_rule.load.kind == "cache"
            and not any(entry.ctx.has(c) for c in dsl_rule.load.candidates)
        ):
            flagged.add(index)
            yield ctx.diag(
                "PL006",
                Severity.ERROR,
                f"rule loads from cache:"
                f"{'|'.join(dsl_rule.load.candidates)} but is selected in "
                f"context {_ctx_text(entry.ctx.present)} with no such copy "
                "(guard it with 'if has(...)')",
                ctx.rule_location(index),
            )
            continue
        writeback = dsl_rule.writeback
        if (
            writeback is not None
            and writeback in ctx.spec.states
            and not entry.ctx.has(writeback)
        ):
            flagged.add(index)
            yield ctx.diag(
                "PL006",
                Severity.ERROR,
                f"rule writes back from {writeback} but is selected in "
                f"context {_ctx_text(entry.ctx.present)} with no such copy "
                "(guard it with 'if has(...)')",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL007 -- invalid observer
# ----------------------------------------------------------------------
@rule("PL007", Severity.ERROR, "invalid-observer",
      "an observer reaction is keyed by, or targets, a non-valid state")
def check_invalid_observer(ctx: LintContext) -> Iterator[Diagnostic]:
    """Observer maps that mention states outside the valid set.

    A reaction keyed by the invalid state is meaningless (a cache with
    no copy has nothing to snoop *from*), and one keyed by -- or moving
    to -- an unknown symbol would corrupt the composite state.  The DSL
    parser enforces this syntactically; the rule catches registry specs
    whose ``react`` builds observer dictionaries dynamically.
    """
    spec = ctx.spec
    seen: set[tuple[str, Op, str, str]] = set()
    for entry in ctx.probes:
        for obs, nxt, _updated in entry.observers:
            key = (entry.state, entry.op, obs, nxt)
            if key in seen:
                continue
            problem: str | None = None
            if obs == spec.invalid:
                problem = f"reaction keyed by the invalid state {obs!r}"
            elif obs not in spec.states:
                problem = f"reaction keyed by unknown state {obs!r}"
            elif nxt not in spec.states:
                problem = f"observer {obs} moves to unknown state {nxt!r}"
            if problem is None:
                continue
            seen.add(key)
            yield ctx.diag(
                "PL007",
                Severity.ERROR,
                f"react({entry.state}, {entry.op.value}): {problem}",
                _rule_or_symbolic(
                    ctx,
                    entry.rule_index,
                    f"react({entry.state}, {entry.op.value})",
                ),
            )


# ----------------------------------------------------------------------
# PL008 -- stall cycle (flow-routed, with a syntactic fallback)
# ----------------------------------------------------------------------
def _stall_location(ctx: LintContext, state: str, op: Op) -> Location:
    """Best location for a stall finding: the first stalling DSL rule."""
    if ctx.dsl is not None:
        stalling = [r for r in ctx.dsl.rules_for(state, op) if r.stalled]
        if stalling:
            return ctx.rule_location(ctx.dsl._rules.index(stalling[0]))
    return ctx.symbolic(f"react({state}, {op.value})")


def syntactic_stall_findings(ctx: LintContext) -> Iterator[Diagnostic]:
    """The original probe-sample stall heuristic (PL008's fallback).

    Kept as a named function so the flow-routed rule can degrade to it
    when lowering fails, and so tests can compare the two analyses'
    false-positive rates directly.
    """
    completes: set[tuple[str, Op]] = set()
    always_stalls: set[tuple[str, Op]] = set()
    for state, op in {(e.state, e.op) for e in ctx.probes}:
        entries = ctx.probes_for(state, op)
        if any(e.matched and not e.stalled for e in entries):
            completes.add((state, op))
        elif entries and all(e.stalled for e in entries):
            always_stalls.add((state, op))
    for state, op in sorted(always_stalls, key=lambda p: (p[0], p[1].value)):
        escape = ctx.reachable_from(state)
        if any((other, op) in completes for other in escape):
            continue
        yield ctx.diag(
            "PL008",
            Severity.WARNING,
            f"operation {op.value} always stalls in state {state} and no "
            "reachable state completes it (possible deadlock)",
            _stall_location(ctx, state, op),
        )


@rule("PL008", Severity.WARNING, "stall-cycle",
      "an operation stalls in a state with no non-stall exit path",
      example=_EX_DEADLOCK)
def check_stall_cycle(ctx: LintContext) -> Iterator[Diagnostic]:
    """Non-progress cycle, after Sethi et al.'s flow-based analysis.

    A stall is only a deadlock when it is *permanent*: the operation
    stalls in every reachable context of the state, and no state the
    cache can flow to (by issuing other operations or by being snooped)
    completes it.  The check runs on the abstract-reachability fixpoint
    over the guarded-action IR, so a stall that some deeper-than-sampled
    context resolves is not flagged -- the flow engine strictly demotes
    the old probe-sample heuristic's false positives.  When lowering
    fails the probe-sample heuristic still runs as a fallback.

    This remains a *static over-approximation* of the dynamic
    starvation analysis (:mod:`repro.liveness`, ``--mode liveness``):
    no statically reachable stall implies dynamically live (enforced
    by :mod:`repro.testkit.livediff`), but a flagged stall may still
    be resolvable at run time -- which is why this rule warns while
    the liveness analysis verdicts.  See docs/LIVENESS.md.
    """
    flow = ctx.flow
    if flow is None:
        yield from syntactic_stall_findings(ctx)
        return
    ir = flow.ir
    permanent = sorted(
        flow.stalls - flow.completes,
        key=lambda cell: (ir.states[cell[0]], ir.ops[cell[1]]),
    )
    for sid, oid in permanent:
        escape = flow.reachable_from(sid)
        if any((other, oid) in flow.completes for other in escape):
            continue
        state, op = ir.states[sid], Op(ir.ops[oid])
        yield ctx.diag(
            "PL008",
            Severity.WARNING,
            f"operation {op.value} always stalls in state {state} and no "
            "reachable state completes it (possible deadlock)",
            _stall_location(ctx, state, op),
        )


# ----------------------------------------------------------------------
# PL009 -- no-op rule (DSL only)
# ----------------------------------------------------------------------
@rule("PL009", Severity.INFO, "no-op-rule",
      "a guarded rule is a self-loop with no effects",
      example=_EX_POINTLESS_GUARD)
def check_no_op_rule(ctx: LintContext) -> Iterator[Diagnostic]:
    """A guarded transition that changes nothing.

    Unguarded self-loops are ordinary (a read hit stays put); a
    *guarded* self-loop with no data clauses and no observers does
    exactly what the fall-through rule would -- the guard is either
    redundant or the author forgot the effect it was written to gate.
    """
    if ctx.dsl is None:
        return
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        if (
            dsl_rule.guard.atoms
            and not dsl_rule.stalled
            and dsl_rule.next_state == dsl_rule.state
            and dsl_rule.load is None
            and dsl_rule.writeback is None
            and not dsl_rule.write_through
            and not dsl_rule.observers
        ):
            yield ctx.diag(
                "PL009",
                Severity.INFO,
                f"guarded rule 'on {dsl_rule.state} {dsl_rule.op.value} if "
                f"{dsl_rule.guard.text}' is a self-loop with no effects "
                "(drop the guard or add the missing clauses)",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL010 -- dead rule (DSL only)
# ----------------------------------------------------------------------
@rule("PL010", Severity.WARNING, "dead-rule",
      "a rule's operation is outside the alphabet or excluded by restrict",
      example=_EX_DEAD_RULE)
def check_dead_rule(ctx: LintContext) -> Iterator[Diagnostic]:
    """A rule that applicability filtering removes before matching.

    ``operations`` narrows the alphabet and ``restrict`` narrows the
    states an operation may be issued from; a rule for an excluded
    combination compiles but can never fire.  Replacement rules for the
    invalid state fall in the same bucket (nothing to replace).
    """
    if ctx.dsl is None:
        return
    for index, dsl_rule in enumerate(ctx.dsl._rules):
        if dsl_rule.op not in ctx.spec.operations:
            yield ctx.diag(
                "PL010",
                Severity.WARNING,
                f"rule for operation {dsl_rule.op.value} is dead: the "
                "operation is not in the declared alphabet",
                ctx.rule_location(index),
            )
        elif not ctx.spec.applicable(dsl_rule.state, dsl_rule.op):
            yield ctx.diag(
                "PL010",
                Severity.WARNING,
                f"rule 'on {dsl_rule.state} {dsl_rule.op.value}' is dead: "
                f"{dsl_rule.op.value} is not applicable from "
                f"{dsl_rule.state} (restrict directive or replacement from "
                "the invalid state)",
                ctx.rule_location(index),
            )


# ----------------------------------------------------------------------
# PL011 -- unused sharing detection (DSL only)
# ----------------------------------------------------------------------
@rule("PL011", Severity.WARNING, "unused-sharing",
      "sharing-detection is on but no guard reads the sharing line",
      example=_EX_WIRE_UNUSED)
def check_unused_sharing(ctx: LintContext) -> Iterator[Diagnostic]:
    """Declared hardware nobody consults.

    ``sharing-detection on`` selects the non-null characteristic
    function (paper Definition 5) -- extra hardware on the bus.  If no
    guard ever reads the line (``any``/``none``), the declaration
    changes verification results for no behavioural reason; the
    protocol is really a null-F protocol.
    """
    if ctx.dsl is None or not ctx.spec.uses_sharing_detection:
        return
    for dsl_rule in ctx.dsl._rules:
        if any(kind in ("any", "none") for kind, _ in dsl_rule.guard.atoms):
            return
    yield ctx.diag(
        "PL011",
        Severity.WARNING,
        "sharing-detection is on but no guard uses any/none; declare "
        "'sharing-detection off' unless the sharing line is intentional",
        ctx.directive_location("sharing-detection"),
    )


# ----------------------------------------------------------------------
# PL012 -- unreachable transition (flow-sensitive)
# ----------------------------------------------------------------------
@rule("PL012", Severity.WARNING, "unreachable-transition",
      "a transition's source state is never abstractly reachable",
      example=_EX_FLOW_DEAD)
def check_unreachable_transition(ctx: LintContext) -> Iterator[Diagnostic]:
    """Transitions from a state the system can never actually occupy.

    PL001 checks *syntactic* reachability (does any edge enter the
    state?); this rule checks *semantic* reachability: starting from
    the all-invalid configuration (paper Section 2.1), does any
    reachable abstract configuration contain the state at all?  A state
    can pass PL001 -- some rule names it as a target -- while the guard
    on that rule can never hold along any real execution, leaving the
    whole row of the transition table dead.  Reachability is computed
    by the fixpoint in :mod:`repro.lint.flow` over the 0/1/many
    abstraction, a sound over-approximation: a state it cannot reach is
    unreachable in every concrete system size.  States PL001 already
    rejects are skipped.
    """
    flow = ctx.flow
    if flow is None:
        return
    ir = flow.ir
    seen: set[tuple[int, int]] = set()
    for t in ir.transitions:
        if t.state in flow.reachable_states:
            continue
        if ir.states[t.state] not in ctx.reachable:
            continue  # PL001's business (an ERROR already)
        if (t.state, t.op) in seen:
            continue
        seen.add((t.state, t.op))
        state, op = ir.states[t.state], ir.ops[t.op]
        location = (
            ctx.rule_location(t.origin)
            if ctx.dsl is not None and t.origin is not None
            else ctx.symbolic(f"react({state}, {op})")
        )
        yield ctx.diag(
            "PL012",
            Severity.WARNING,
            f"transition 'on {state} {op}' can never fire: no reachable "
            f"configuration contains a cache in state {state} (the state "
            "is only entered by rules whose guards never hold)",
            location,
        )


# ----------------------------------------------------------------------
# PL013 -- subsumed guard (flow-sensitive, DSL only)
# ----------------------------------------------------------------------
@rule("PL013", Severity.WARNING, "subsumed-guard",
      "an earlier transition claims every reachable context this guard matches",
      example=_EX_SHADOWED)
def check_subsumed_guard(ctx: LintContext) -> Iterator[Diagnostic]:
    """First-match subsumption proven over reachable contexts.

    PL002 reports a rule no *sampled* context selects; this rule proves
    the stronger flow-sensitive fact: the guard is satisfiable in
    reachable configurations, but an earlier transition of the same
    ``(state, op)`` cell wins every one of them, naming the culprit.
    Distinct from PL015 (guard never satisfiable at all): a subsumed
    guard describes real contexts and the fix is reordering; a vacuous
    guard describes none and the fix is deletion.  Only rules the
    author wrote are flagged (synthesized registry decision lists
    shadow by construction).
    """
    flow = ctx.flow
    if flow is None or ctx.dsl is None:
        return
    ir = flow.ir
    for index, t in enumerate(ir.transitions):
        if index in flow.selected or t.origin is None:
            continue
        presents = flow.cell_contexts.get((t.state, t.op))
        if not presents:
            continue  # cell unreachable: PL012 / PL001
        satisfied = sorted(
            (p for p in presents if t.guard.holds(p)),
            key=lambda p: (len(p), sorted(p)),
        )
        if not satisfied:
            continue  # PL015's business
        culprits: set[int] = set()
        for p in satisfied:
            for other_index, other in enumerate(ir.transitions[:index]):
                if (
                    (other.state, other.op) == (t.state, t.op)
                    and other.guard.holds(p)
                ):
                    culprits.add(other_index)
                    break
        culprit_lines = sorted(
            {
                ctx.dsl._rules[ir.transitions[c].origin].line_no
                for c in culprits
                if ir.transitions[c].origin is not None
            }
        )
        detail = (
            f" (claimed by the rule{'s' if len(culprit_lines) > 1 else ''} at "
            f"line{'s' if len(culprit_lines) > 1 else ''} "
            f"{', '.join(map(str, culprit_lines))})"
            if culprit_lines
            else ""
        )
        example = _ctx_text(frozenset(ir.states[s] for s in satisfied[0]))
        yield ctx.diag(
            "PL013",
            Severity.WARNING,
            f"guard '{t.guard.render(ir.states)}' is reachably satisfiable "
            f"(e.g. in context {example}) but an earlier rule always matches "
            f"first{detail}; reorder or delete the rule",
            ctx.rule_location(t.origin),
        )


# ----------------------------------------------------------------------
# PL014 -- permission race (flow-sensitive)
# ----------------------------------------------------------------------
@rule("PL014", Severity.WARNING, "permission-race",
      "a silent write hit leaves another cache holding a live copy",
      example=_EX_RACEY)
def check_permission_race(ctx: LintContext) -> Iterator[Diagnostic]:
    """Two caches holding write permission under the sharing abstraction.

    A *write hit* -- W issued from a valid state -- that completes
    without invalidating or updating the other copies its reachable
    context provably contains means two caches each believe they may
    write locally: the paper's single-writer invariant (Definition 2's
    forbidden patterns exist to enforce it) is violated before any
    expansion runs.  The rule only fires on configurations the
    abstract-reachability fixpoint actually reaches, so protocols whose
    exclusivity discipline keeps sharers away from silent writes
    (every zoo protocol) stay clean.  Write *misses* are out of scope:
    they go on the bus by construction, and stale-copy effects are the
    verifier's data-consistency check (Definition 3).
    """
    flow = ctx.flow
    if flow is None:
        return
    ir = flow.ir
    if "W" not in ir.ops:
        return
    w = ir.op_id("W")
    reported: set[tuple[int, int]] = set()
    for sid in sorted(ir.valid_ids()):
        for present, index in sorted(
            flow.selections.get((sid, w), ()),
            key=lambda pair: (sorted(pair[0]), pair[1]),
        ):
            t = ir.transitions[index]
            if t.action.stalled:
                continue
            reactions = {obs: (nxt, upd) for obs, nxt, upd in t.action.observers}
            for other in sorted(present):
                nxt, updated = reactions.get(other, (other, False))
                if nxt == ir.invalid or updated:
                    continue
                if (sid, other) in reported:
                    continue
                reported.add((sid, other))
                state = ir.states[sid]
                location = (
                    ctx.rule_location(t.origin)
                    if ctx.dsl is not None and t.origin is not None
                    else ctx.symbolic(f"react({state}, W)")
                )
                yield ctx.diag(
                    "PL014",
                    Severity.WARNING,
                    f"write hit from {state} completes in reachable context "
                    f"{_ctx_text(frozenset(ir.states[s] for s in present))} "
                    f"without invalidating or updating the {ir.states[other]} "
                    "copy -- two caches can hold write permission",
                    location,
                )


# ----------------------------------------------------------------------
# PL015 -- vacuous guard (flow-sensitive, DSL only)
# ----------------------------------------------------------------------
@rule("PL015", Severity.WARNING, "vacuous-guard",
      "a guard is satisfied by no reachable context of its cell",
      example=_EX_VACUOUS)
def check_vacuous_guard(ctx: LintContext) -> Iterator[Diagnostic]:
    """A guard that no reachable observation context can ever satisfy.

    The cell itself is reachable, but across every present-set the
    abstract fixpoint observes there, the conjunction never holds --
    either it is contradictory outright (``any & none``) or it tests
    for company the protocol makes impossible (``has(E)`` when E never
    coexists with the issuing state).  Stall rules are exempt: a
    blocking guard that reachability analysis proves idle means the
    exclusion it defends against already works (lock-style protocols
    keep defensive ``stall`` arms for states their own discipline makes
    unreachable), whereas a vacuous guard on a *completing* transition
    is dead action logic.  Only author-written rules are flagged.
    """
    flow = ctx.flow
    if flow is None or ctx.dsl is None:
        return
    ir = flow.ir
    for index, t in enumerate(ir.transitions):
        if index in flow.selected or t.origin is None:
            continue
        if t.action.stalled or t.guard.always:
            continue
        presents = flow.cell_contexts.get((t.state, t.op))
        if not presents:
            continue  # cell unreachable: PL012 / PL001
        if any(t.guard.holds(p) for p in presents):
            continue  # PL013's business
        yield ctx.diag(
            "PL015",
            Severity.WARNING,
            f"guard '{t.guard.render(ir.states)}' is vacuous: none of the "
            f"{len(presents)} reachable context{'s' if len(presents) > 1 else ''} "
            f"of ({ir.states[t.state]}, {ir.ops[t.op]}) satisfies it",
            ctx.rule_location(t.origin),
        )
