"""Deterministic fault injection for the batch engine's chaos tests.

Robustness claims ("a crashing worker cannot take down a sweep", "an
interrupted batch resumes where it stopped") are worthless untested,
and untestable with real faults -- segfaults and SIGKILLs do not strike
reproducibly.  This module makes failure a *plan*: every fault is keyed
by job index under a fixed seed, so a chaos test runs the same disaster
twice and asserts the same recovery.

Ingredients:

* :class:`Fault` / :class:`FaultPlan` -- which jobs fail and how
  (``crash`` the worker, ``hang`` until SIGKILL, run ``slow`` enough to
  trip the runner's soft-cancel);
* :class:`FaultedSpec` -- a delegating protocol wrapper that detonates
  the fault inside ``react`` **only in worker processes**: the parent
  fingerprints the very same spec (``spec_to_dict`` exercises every
  reaction) without triggering it;
* :func:`inject` -- apply a plan to a job list;
* :func:`corrupt_cache_entry` / :func:`tear_journal` /
  :func:`corrupt_store_file` -- storage-level faults: a flipped-bit
  cache entry, a journal whose final line was cut mid-write, and a
  campaign-store JSON file overwritten with garbage;
* :func:`choke_journal` -- service-level disk exhaustion: wrap a live
  journal's file backing so the *n*-th append raises ``ENOSPC``,
  proving the run survives on the in-memory stream;
* :class:`KillSwitchJournal` -- a journal that raises
  ``KeyboardInterrupt`` (or delivers a real signal, e.g. ``SIGTERM``)
  after *n* ``job_finish`` events, simulating an operator's Ctrl-C or
  an orchestrator's kill at a precise point in the run.

Faults with ``once=True`` detonate exactly one worker attempt and let
every later attempt through -- the shape of a transient infrastructure
failure, which supervised retries must absorb without changing the
verdict.  One-shot state must survive the detonation itself (the
worker dies with it), so it lives in marker files under the
``marker_dir`` given to :func:`inject`: the first attempt to
exclusive-create the marker wins and detonates.

Tearing an SSE connection needs no helper here: the chaos tests sever
the client socket mid-stream and reconnect with ``?offset=N``, which
the serve layer must answer byte-identically.

Worker-only detonation relies on process names: ``multiprocessing``
children are never called ``MainProcess``.  Faults therefore require a
:class:`~repro.engine.runner.ParallelRunner`; under a serial runner a
faulted spec behaves exactly like its inner spec.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.protocol import ProtocolSpec
from ..core.reactions import Ctx, Outcome
from ..core.symbols import Op
from .cache import ResultCache
from .job import VerificationJob
from .journal import RunJournal

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultedSpec",
    "inject",
    "choke_journal",
    "corrupt_cache_entry",
    "corrupt_store_file",
    "tear_journal",
    "KillSwitchJournal",
]

#: Supported fault kinds.
FAULT_KINDS = ("crash", "hang", "slow")


@dataclass(frozen=True)
class Fault:
    """One injected failure mode.

    ``crash`` kills the worker with ``os._exit`` (simulating a
    segfault or OOM-kill: no exception, no cleanup); ``hang`` spins
    forever ignoring everything except SIGKILL; ``slow`` sleeps
    ``delay`` seconds in *every* reaction, so the job runs -- and
    cooperates with soft-cancel -- but cannot finish within a tight
    timeout.

    ``once=True`` makes the fault transient: exactly one worker
    attempt detonates, every later attempt behaves like the sound
    spec.  Requires a ``marker_dir`` at :func:`inject` time so the
    "already detonated" state survives the dying worker.
    """

    kind: str
    delay: float = 0.05
    once: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, not {self.kind!r}"
            )


class FaultPlan:
    """Deterministic assignment of faults to job indices."""

    def __init__(
        self, faults: Mapping[int, Fault] | None = None, *, seed: int = 0
    ) -> None:
        self.faults = dict(faults or {})
        self.seed = seed

    @classmethod
    def random(
        cls,
        n_jobs: int,
        *,
        seed: int,
        rate: float = 0.25,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same disasters."""
        rng = random.Random(seed)
        faults = {
            i: Fault(rng.choice(list(kinds)))
            for i in range(n_jobs)
            if rng.random() < rate
        }
        return cls(faults, seed=seed)

    def fault_for(self, index: int) -> Fault | None:
        """The fault planned for job *index* (``None`` for sound jobs)."""
        return self.faults.get(index)


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


class FaultedSpec(ProtocolSpec):
    """Delegating wrapper that detonates a :class:`Fault` in workers.

    Everything -- states, error patterns, reactions -- forwards to the
    inner specification, so in the parent process (fingerprinting,
    preflight, validation) the wrapper is behaviourally identical to
    its inner spec.  Inside a worker process, ``react`` triggers the
    fault instead.  The name is suffixed with the fault kind so a
    faulted spec never shares a fingerprint with its sound original.
    """

    def __init__(
        self,
        inner: ProtocolSpec,
        fault: Fault,
        marker: str | Path | None = None,
    ) -> None:
        if fault.once and marker is None:
            raise ValueError(
                "a once-only fault needs a marker path (inject with "
                "marker_dir=...) so its state survives the dying worker"
            )
        self.inner = inner
        self.fault = fault
        #: One-shot claim file: the first worker attempt to create it
        #: detonates; later attempts see it and run soundly.
        self.marker = str(marker) if marker is not None else None
        self.name = f"{inner.name}+fault-{fault.kind}"
        self.full_name = f"{inner.full_name or inner.name} (faulted: {fault.kind})"
        self.states = inner.states
        self.invalid = inner.invalid
        self.uses_sharing_detection = inner.uses_sharing_detection
        self.operations = inner.operations
        self.error_patterns = inner.error_patterns
        self.owner_states = inner.owner_states
        self.exclusive_states = inner.exclusive_states
        self.shared_fill_state = inner.shared_fill_state

    def applicable(self, state: str, op: Op) -> bool:
        return self.inner.applicable(state, op)

    def _armed(self) -> bool:
        """Should this reaction detonate?  Claims the one-shot marker."""
        if not self.fault.once:
            return True
        assert self.marker is not None
        try:
            fd = os.open(self.marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False  # already detonated on an earlier attempt
        os.close(fd)
        return True

    def react(self, state: str, op: Op, ctx: Ctx) -> Outcome:
        if _in_worker() and self._armed():
            if self.fault.kind == "crash":
                os._exit(13)
            if self.fault.kind == "hang":
                while True:  # pragma: no cover - ended by SIGKILL
                    time.sleep(0.05)
            time.sleep(self.fault.delay)
        return self.inner.react(state, op, ctx)


def inject(
    jobs: Sequence[VerificationJob],
    plan: FaultPlan,
    *,
    marker_dir: str | Path | None = None,
) -> list[VerificationJob]:
    """Apply *plan* to a job list: planned jobs get a faulted spec.

    Labels are preserved so journals, caches and resume logic address
    the faulted jobs exactly like their sound counterparts.
    ``marker_dir`` (required when the plan contains ``once`` faults) is
    where the one-shot claim files live, one per faulted job index.
    """
    if marker_dir is not None:
        marker_dir = Path(marker_dir)
        marker_dir.mkdir(parents=True, exist_ok=True)
    out: list[VerificationJob] = []
    for i, job in enumerate(jobs):
        fault = plan.fault_for(i)
        if fault is None:
            out.append(job)
            continue
        marker = (
            marker_dir / f"fault-{plan.seed}-{i}.detonated"
            if marker_dir is not None
            else None
        )
        out.append(
            replace(
                job,
                protocol=None,
                mutant=None,
                spec_file=None,
                spec=FaultedSpec(job.resolve_spec(), fault, marker=marker),
                label=job.label,
            )
        )
    return out


def corrupt_cache_entry(
    cache: ResultCache,
    fingerprint: str,
    job: VerificationJob,
    payload: str = '{"status": "verified", "payload": [1,',
) -> Path:
    """Overwrite *job*'s cache entry with garbage; returns its path.

    The default payload is torn JSON; pass valid-JSON-wrong-shape text
    to exercise the shape checks instead of the parser.
    """
    key = cache.key_for(fingerprint, job)
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(payload, encoding="utf-8")
    return path


def corrupt_store_file(
    path: str | Path, payload: str = '{"state": "running", "request": [1,'
) -> Path:
    """Overwrite a campaign-store JSON file with garbage; returns it.

    Simulates a crash mid-``os.replace`` or filesystem damage in the
    service's state directory: recovery
    (:meth:`repro.serve.store.CampaignStore.load_all`) must skip the
    damaged campaign with a warning instead of refusing to start.
    """
    path = Path(path)
    path.write_text(payload, encoding="utf-8")
    return path


class _ChokingWriter:
    """File-object wrapper whose *n*-th write raises ``ENOSPC``."""

    def __init__(self, fh: Any, after: int) -> None:
        self._fh = fh
        self.after = int(after)
        self.writes = 0

    def write(self, data: str) -> int:
        if self.writes >= self.after:
            import errno

            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        self.writes += 1
        return self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()


def choke_journal(journal: RunJournal, *, after: int) -> None:
    """Make *journal*'s file backing fail with ``ENOSPC`` after *n* writes.

    The journal must keep the run alive on its in-memory event stream
    (one ``RuntimeWarning``, file backing dropped) -- the service-level
    disk-full drill.  No-op for in-memory journals.
    """
    if journal._fh is not None:
        journal._fh = _ChokingWriter(journal._fh, after)  # type: ignore[assignment]


def tear_journal(path: str | Path, *, drop_bytes: int = 7) -> None:
    """Cut the final *drop_bytes* bytes off a journal file.

    Simulates a run killed mid-``write``: the last JSONL line is left
    torn, which :meth:`RunJournal.read` must skip while recovering
    every complete line before it.
    """
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb+") as fh:
        fh.truncate(max(0, size - drop_bytes))


class KillSwitchJournal(RunJournal):
    """A journal that pulls the plug after *after* ``job_finish`` events.

    The interrupt fires *after* the triggering event is fully written
    and flushed -- exactly like an operator's Ctrl-C between jobs --
    and only once, so the batch orchestrator's ``run_aborted``
    handling can still journal the abort.

    By default the plug is a raised ``KeyboardInterrupt`` (Ctrl-C).
    ``signum`` delivers a real signal to this process instead (e.g.
    ``signal.SIGTERM``), exercising whatever handler the CLI installed
    -- the shape of a container orchestrator's kill.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        after: int,
        mode: str = "new",
        signum: int | None = None,
    ) -> None:
        super().__init__(path, mode=mode)
        self.after = int(after)
        self.signum = signum
        self.fired = False

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        record = super().emit(event, **fields)
        if (
            not self.fired
            and event == "job_finish"
            and self.count("job_finish") >= self.after
        ):
            self.fired = True
            if self.signum is not None:
                # The signal is delivered synchronously on this thread:
                # the interpreter runs the handler at the next bytecode
                # boundary, right after os.kill returns.
                os.kill(os.getpid(), self.signum)
            else:
                raise KeyboardInterrupt
        return record
