"""Deterministic fault injection for the batch engine's chaos tests.

Robustness claims ("a crashing worker cannot take down a sweep", "an
interrupted batch resumes where it stopped") are worthless untested,
and untestable with real faults -- segfaults and SIGKILLs do not strike
reproducibly.  This module makes failure a *plan*: every fault is keyed
by job index under a fixed seed, so a chaos test runs the same disaster
twice and asserts the same recovery.

Ingredients:

* :class:`Fault` / :class:`FaultPlan` -- which jobs fail and how
  (``crash`` the worker, ``hang`` until SIGKILL, run ``slow`` enough to
  trip the runner's soft-cancel);
* :class:`FaultedSpec` -- a delegating protocol wrapper that detonates
  the fault inside ``react`` **only in worker processes**: the parent
  fingerprints the very same spec (``spec_to_dict`` exercises every
  reaction) without triggering it;
* :func:`inject` -- apply a plan to a job list;
* :func:`corrupt_cache_entry` / :func:`tear_journal` -- storage-level
  faults: a flipped-bit cache entry and a journal whose final line was
  cut mid-write;
* :class:`KillSwitchJournal` -- a journal that raises
  ``KeyboardInterrupt`` after *n* ``job_finish`` events, simulating an
  operator's Ctrl-C at a precise point in the run.

Worker-only detonation relies on process names: ``multiprocessing``
children are never called ``MainProcess``.  Faults therefore require a
:class:`~repro.engine.runner.ParallelRunner`; under a serial runner a
faulted spec behaves exactly like its inner spec.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from ..core.protocol import ProtocolSpec
from ..core.reactions import Ctx, Outcome
from ..core.symbols import Op
from .cache import ResultCache
from .job import VerificationJob
from .journal import RunJournal

__all__ = [
    "Fault",
    "FaultPlan",
    "FaultedSpec",
    "inject",
    "corrupt_cache_entry",
    "tear_journal",
    "KillSwitchJournal",
]

#: Supported fault kinds.
FAULT_KINDS = ("crash", "hang", "slow")


@dataclass(frozen=True)
class Fault:
    """One injected failure mode.

    ``crash`` kills the worker with ``os._exit`` (simulating a
    segfault or OOM-kill: no exception, no cleanup); ``hang`` spins
    forever ignoring everything except SIGKILL; ``slow`` sleeps
    ``delay`` seconds in *every* reaction, so the job runs -- and
    cooperates with soft-cancel -- but cannot finish within a tight
    timeout.
    """

    kind: str
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, not {self.kind!r}"
            )


class FaultPlan:
    """Deterministic assignment of faults to job indices."""

    def __init__(
        self, faults: Mapping[int, Fault] | None = None, *, seed: int = 0
    ) -> None:
        self.faults = dict(faults or {})
        self.seed = seed

    @classmethod
    def random(
        cls,
        n_jobs: int,
        *,
        seed: int,
        rate: float = 0.25,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """A reproducible random plan: same seed, same disasters."""
        rng = random.Random(seed)
        faults = {
            i: Fault(rng.choice(list(kinds)))
            for i in range(n_jobs)
            if rng.random() < rate
        }
        return cls(faults, seed=seed)

    def fault_for(self, index: int) -> Fault | None:
        """The fault planned for job *index* (``None`` for sound jobs)."""
        return self.faults.get(index)


def _in_worker() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


class FaultedSpec(ProtocolSpec):
    """Delegating wrapper that detonates a :class:`Fault` in workers.

    Everything -- states, error patterns, reactions -- forwards to the
    inner specification, so in the parent process (fingerprinting,
    preflight, validation) the wrapper is behaviourally identical to
    its inner spec.  Inside a worker process, ``react`` triggers the
    fault instead.  The name is suffixed with the fault kind so a
    faulted spec never shares a fingerprint with its sound original.
    """

    def __init__(self, inner: ProtocolSpec, fault: Fault) -> None:
        self.inner = inner
        self.fault = fault
        self.name = f"{inner.name}+fault-{fault.kind}"
        self.full_name = f"{inner.full_name or inner.name} (faulted: {fault.kind})"
        self.states = inner.states
        self.invalid = inner.invalid
        self.uses_sharing_detection = inner.uses_sharing_detection
        self.operations = inner.operations
        self.error_patterns = inner.error_patterns
        self.owner_states = inner.owner_states
        self.exclusive_states = inner.exclusive_states
        self.shared_fill_state = inner.shared_fill_state

    def applicable(self, state: str, op: Op) -> bool:
        return self.inner.applicable(state, op)

    def react(self, state: str, op: Op, ctx: Ctx) -> Outcome:
        if _in_worker():
            if self.fault.kind == "crash":
                os._exit(13)
            if self.fault.kind == "hang":
                while True:  # pragma: no cover - ended by SIGKILL
                    time.sleep(0.05)
            time.sleep(self.fault.delay)
        return self.inner.react(state, op, ctx)


def inject(
    jobs: Sequence[VerificationJob], plan: FaultPlan
) -> list[VerificationJob]:
    """Apply *plan* to a job list: planned jobs get a faulted spec.

    Labels are preserved so journals, caches and resume logic address
    the faulted jobs exactly like their sound counterparts.
    """
    out: list[VerificationJob] = []
    for i, job in enumerate(jobs):
        fault = plan.fault_for(i)
        if fault is None:
            out.append(job)
            continue
        out.append(
            replace(
                job,
                protocol=None,
                mutant=None,
                spec_file=None,
                spec=FaultedSpec(job.resolve_spec(), fault),
                label=job.label,
            )
        )
    return out


def corrupt_cache_entry(
    cache: ResultCache,
    fingerprint: str,
    job: VerificationJob,
    payload: str = '{"status": "verified", "payload": [1,',
) -> Path:
    """Overwrite *job*'s cache entry with garbage; returns its path.

    The default payload is torn JSON; pass valid-JSON-wrong-shape text
    to exercise the shape checks instead of the parser.
    """
    key = cache.key_for(fingerprint, job)
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(payload, encoding="utf-8")
    return path


def tear_journal(path: str | Path, *, drop_bytes: int = 7) -> None:
    """Cut the final *drop_bytes* bytes off a journal file.

    Simulates a run killed mid-``write``: the last JSONL line is left
    torn, which :meth:`RunJournal.read` must skip while recovering
    every complete line before it.
    """
    path = Path(path)
    size = path.stat().st_size
    with path.open("rb+") as fh:
        fh.truncate(max(0, size - drop_bytes))


class KillSwitchJournal(RunJournal):
    """A journal that pulls the plug after *after* ``job_finish`` events.

    The interrupt fires *after* the triggering event is fully written
    and flushed -- exactly like an operator's Ctrl-C between jobs --
    and only once, so the batch orchestrator's ``run_aborted``
    handling can still journal the abort.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        after: int,
        mode: str = "new",
    ) -> None:
        super().__init__(path, mode=mode)
        self.after = int(after)
        self.fired = False

    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        record = super().emit(event, **fields)
        if (
            not self.fired
            and event == "job_finish"
            and self.count("job_finish") >= self.after
        ):
            self.fired = True
            raise KeyboardInterrupt
        return record
