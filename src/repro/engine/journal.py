"""Structured run journal: one JSON object per engine event.

Every batch run appends line-delimited JSON events -- run start/end,
job admission, cache hits, retries, timeouts, crashes and per-job
finish records (visits, states expanded, essential-state count, wall
time) -- to an in-memory list and, when a path is given, to a JSONL
file.  The journal is the engine's audit trail: the warm-cache
acceptance check ("zero re-verifications") is literally a count of
``cache_hit`` versus ``job_finish`` events.

Event vocabulary (all events carry ``t``, a Unix timestamp):

========== =================================================================
event      extra fields
========== =================================================================
run_start  jobs, workers, engine, cache_dir, journal, preflight
job_start  job, fingerprint
lint       job, mode, errors, warnings, infos, suppressed, findings
           (the static-analysis preflight; ``findings`` are
           ``Diagnostic.to_dict()`` records)
cache_hit  job, key
job_retry  job, attempt, reason
job_timeout job, attempt, timeout
job_crash  job, attempt, exitcode
job_finish job, status, ok, cached, attempts, elapsed, visits, expanded,
           essential, error
run_end    jobs, verified, violations, errors, rejected, cache_hits,
           cache_lookups ({hits, misses} from the result cache, or null
           when the run had no cache), wall, metrics (a
           ``repro.obs`` metrics snapshot when the run was profiled,
           else null)
========== =================================================================

Timestamps come from :func:`repro.obs.clock.wall` -- the engine's one
wall-clock source -- while durations inside events (``elapsed``,
``wall``) are measured on the monotonic clock by their producers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, IO

from ..obs import clock

__all__ = ["RunJournal"]


class RunJournal:
    """Collect (and optionally persist) the event stream of one run."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict[str, Any]] = []
        self._fh: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event (and flush it to the JSONL file, if any)."""
        record: dict[str, Any] = {"t": round(clock.wall(), 3), "event": event}
        record.update(fields)
        self.events.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        return record

    def count(self, event: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for record in self.events if record["event"] == event)

    def of(self, event: str) -> list[dict[str, Any]]:
        """All recorded events of one kind, in order."""
        return [record for record in self.events if record["event"] == event]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the backing file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
