"""Structured run journal: one JSON object per engine event.

Every batch run appends line-delimited JSON events -- run start/end,
job admission, cache hits, retries, timeouts, crashes and per-job
finish records (visits, states expanded, essential-state count, wall
time) -- to an in-memory list and, when a path is given, to a JSONL
file.  The journal is the engine's audit trail: the warm-cache
acceptance check ("zero re-verifications") is literally a count of
``cache_hit`` versus ``job_finish`` events.

Event vocabulary (all events carry ``t``, a Unix timestamp):

=========== ================================================================
event       extra fields
=========== ================================================================
run_start   jobs, workers, engine, cache_dir, journal, preflight
run_resume  journal, completed, remaining (a ``--resume`` run replaying
            the finished jobs of an interrupted batch)
job_start   job, fingerprint
lint        job, mode, errors, warnings, infos, suppressed, findings
            (the static-analysis preflight; ``findings`` are
            ``Diagnostic.to_dict()`` records)
cache_hit   job, key
job_retry   job, attempt, reason
job_cancel  job, attempt, timeout, grace (soft-cancel: the worker was
            asked to wrap up and emit a partial result before SIGKILL)
job_timeout job, attempt, timeout
job_crash   job, attempt, exitcode
job_partial job, reason, attempt (a budget-exhausted worker returned a
            structured partial result)
job_replayed job, status (a resumed run adopting a terminal
            error/rejected record from the prior journal)
job_finish  job, status, ok, cached, attempts, elapsed, visits, expanded,
            essential, error
run_aborted jobs, finished (the batch was interrupted -- SIGINT --
            after ``finished`` jobs; the journal is flushed so the run
            can be resumed)
run_end     jobs, verified, violations, errors, partials, rejected,
            cache_hits,
            cache_lookups ({hits, misses} from the result cache, or null
            when the run had no cache), wall, metrics (a
            ``repro.obs`` metrics snapshot when the run was profiled,
            else null)
=========== ================================================================

Timestamps come from :func:`repro.obs.clock.wall` -- the engine's one
wall-clock source -- while durations inside events (``elapsed``,
``wall``) are measured on the monotonic clock by their producers.

The file backing is crash-safe by construction: every event is one
``write`` + ``flush`` of a full line, so a killed run leaves at worst
one torn final line, which :meth:`RunJournal.read` skips (with a
warning) when recovering the stream for ``--resume``.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, IO

from ..obs import clock

__all__ = ["RunJournal"]


class RunJournal:
    """Collect (and optionally persist) the event stream of one run.

    ``mode`` controls what happens when ``path`` already exists:

    * ``"new"`` (the default) refuses to clobber an existing non-empty
      journal -- an interrupted run's journal is the only thing that
      makes it resumable, so overwriting one silently would destroy
      exactly the runs that need it most;
    * ``"append"`` continues an existing journal (used by
      ``repro batch --resume``);
    * ``"overwrite"`` restores the old clobbering behaviour for
      callers that explicitly want a fresh file.
    """

    def __init__(
        self, path: str | Path | None = None, *, mode: str = "new"
    ) -> None:
        if mode not in ("new", "append", "overwrite"):
            raise ValueError(
                f"journal mode must be 'new', 'append' or 'overwrite', "
                f"not {mode!r}"
            )
        self.path = Path(path) if path is not None else None
        self.events: list[dict[str, Any]] = []
        self._fh: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if mode == "new" and self.path.exists() and self.path.stat().st_size:
                raise FileExistsError(
                    f"journal {self.path} already exists; resume the run "
                    "with --resume, or pass mode='overwrite' to discard it"
                )
            self._fh = self.path.open("a" if mode == "append" else "w",
                                      encoding="utf-8")

    # ------------------------------------------------------------------
    @classmethod
    def read(cls, path: str | Path) -> list[dict[str, Any]]:
        """Recover the event stream of a (possibly torn) journal file.

        A run killed mid-write leaves at most one torn trailing line;
        it is skipped with a :class:`RuntimeWarning`.  A corrupt line
        *followed by* valid events means the file was damaged some
        other way -- also skipped, also warned about -- so recovery
        always yields every decodable event in order.
        """
        events: list[dict[str, Any]] = []
        text = Path(path).read_text(encoding="utf-8")
        lines = text.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal line is not an object")
            except (ValueError, TypeError):
                kind = (
                    "torn trailing line"
                    if lineno == len(lines)
                    else f"corrupt line {lineno}"
                )
                warnings.warn(
                    f"journal {path}: skipping {kind}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            events.append(record)
        return events

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event (and flush it to the JSONL file, if any)."""
        record: dict[str, Any] = {"t": round(clock.wall(), 3), "event": event}
        record.update(fields)
        self.events.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        return record

    def count(self, event: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for record in self.events if record["event"] == event)

    def of(self, event: str) -> list[dict[str, Any]]:
        """All recorded events of one kind, in order."""
        return [record for record in self.events if record["event"] == event]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the backing file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
