"""Structured run journal: one JSON object per engine event.

Every batch run appends line-delimited JSON events -- run start/end,
job admission, cache hits, retries, timeouts, crashes and per-job
finish records (visits, states expanded, essential-state count, wall
time) -- to an in-memory list and, when a path is given, to a JSONL
file.  The journal is the engine's audit trail: the warm-cache
acceptance check ("zero re-verifications") is literally a count of
``cache_hit`` versus ``job_finish`` events.

Event vocabulary (all events carry ``t``, a Unix timestamp):

=========== ================================================================
event       extra fields
=========== ================================================================
run_start   jobs, workers, engine, cache_dir, journal, preflight
run_resume  journal, completed, remaining (a ``--resume`` run replaying
            the finished jobs of an interrupted batch)
job_start   job, fingerprint
lint        job, mode, errors, warnings, infos, suppressed, findings
            (the static-analysis preflight; ``findings`` are
            ``Diagnostic.to_dict()`` records)
cache_hit   job, key
job_retry   job, attempt, reason, delay (seconds of supervised backoff
            before the retry is redispatched; 0 without a policy)
breaker_open job, key, reason, transition, cooldown/retry_after (the
            circuit breaker tripped for -- or refused to admit -- this
            spec fingerprint; the job finishes ``quarantined``)
job_cancel  job, attempt, timeout, grace -- or reason="drain", grace
            (soft-cancel: the worker was asked to wrap up and emit a
            partial result before SIGKILL, on per-job timeout or
            graceful drain)
job_timeout job, attempt, timeout
job_crash   job, attempt, exitcode
job_partial job, reason, attempt (a budget-exhausted worker returned a
            structured partial result)
job_replayed job, status (a resumed run adopting a terminal
            error/rejected record from the prior journal)
job_finish  job, status, ok, cached, attempts, elapsed, visits, expanded,
            essential, error
run_aborted jobs, finished (the batch was interrupted -- SIGINT,
            SIGTERM or a graceful drain -- after ``finished`` jobs;
            the journal is flushed so the run can be resumed)
run_end     jobs, verified, violations, errors, partials, rejected,
            cache_hits,
            cache_lookups ({hits, misses} from the result cache, or null
            when the run had no cache), wall, metrics (a
            ``repro.obs`` metrics snapshot when the run was profiled,
            else null)
=========== ================================================================

Timestamps come from :func:`repro.obs.clock.wall` -- the engine's one
wall-clock source -- while durations inside events (``elapsed``,
``wall``) are measured on the monotonic clock by their producers.

The file backing is crash-safe by construction: every event is one
``write`` + ``flush`` of a full line, so a killed run leaves at worst
one torn final line, which :meth:`RunJournal.read` skips (with a
warning) when recovering the stream for ``--resume``.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, IO

from ..obs import clock

__all__ = ["JournalFollower", "RunJournal"]


class JournalFollower:
    """Incremental tail reader over a JSONL journal file.

    Unlike :meth:`RunJournal.read`, which loads the whole file, a
    follower remembers a **byte offset** and each :meth:`poll` returns
    only the events appended since the last one.  The offset always
    points at the start of a line: a torn trailing line (no newline
    yet -- the writer is mid-``write`` or the run was killed) is *not*
    consumed; it is re-read on the next poll, by which time the writer
    has either completed it or never will.  ``offset`` is therefore a
    stable resume token -- two followers started from the same offset
    over the same file see byte-identical streams, which is what makes
    SSE reconnects (``repro serve``) and ``--resume`` deterministic.

    Corrupt *complete* lines (decodable as neither JSON nor an object)
    are skipped with a :class:`RuntimeWarning`, but their bytes are
    still consumed so the stream keeps advancing past damage.
    """

    def __init__(self, path: str | Path, *, offset: int = 0) -> None:
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self.path = Path(path)
        #: Byte offset of the first unconsumed line.
        self.offset = int(offset)
        self._lineno = 0  # complete lines consumed since ``offset`` 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> bool:
        """True iff unconsumed bytes remain (a torn/in-flight line)."""
        try:
            return self.path.stat().st_size > self.offset
        except OSError:
            return False

    def poll_lines(self) -> list[tuple[bytes, int]]:
        """New complete journal lines as ``(raw_line, offset_after)``.

        ``raw_line`` excludes the newline; ``offset_after`` is the byte
        offset just past it (the resume token for replaying the stream
        from the *next* line).  Lines that do not decode to a JSON
        object are skipped with a warning but still advance the offset.
        """
        try:
            with self.path.open("rb") as fh:
                fh.seek(self.offset)
                chunk = fh.read()
        except OSError:
            return []
        end = chunk.rfind(b"\n")
        if end < 0:
            return []
        out: list[tuple[bytes, int]] = []
        for raw in chunk[: end + 1].split(b"\n")[:-1]:
            self.offset += len(raw) + 1
            self._lineno += 1
            if not raw.strip():
                continue
            try:
                record = json.loads(raw)
                if not isinstance(record, dict):
                    raise ValueError("journal line is not an object")
            except (ValueError, TypeError):
                warnings.warn(
                    f"journal {self.path}: skipping corrupt line "
                    f"{self._lineno}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            out.append((raw, self.offset))
        return out

    def poll(self) -> list[dict[str, Any]]:
        """New complete events appended since the last poll, in order."""
        return [json.loads(raw) for raw, _ in self.poll_lines()]


class RunJournal:
    """Collect (and optionally persist) the event stream of one run.

    ``mode`` controls what happens when ``path`` already exists:

    * ``"new"`` (the default) refuses to clobber an existing non-empty
      journal -- an interrupted run's journal is the only thing that
      makes it resumable, so overwriting one silently would destroy
      exactly the runs that need it most;
    * ``"append"`` continues an existing journal (used by
      ``repro batch --resume``);
    * ``"overwrite"`` restores the old clobbering behaviour for
      callers that explicitly want a fresh file.
    """

    def __init__(
        self, path: str | Path | None = None, *, mode: str = "new"
    ) -> None:
        if mode not in ("new", "append", "overwrite"):
            raise ValueError(
                f"journal mode must be 'new', 'append' or 'overwrite', "
                f"not {mode!r}"
            )
        self.path = Path(path) if path is not None else None
        self.events: list[dict[str, Any]] = []
        self._fh: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if mode == "new" and self.path.exists() and self.path.stat().st_size:
                raise FileExistsError(
                    f"journal {self.path} already exists; resume the run "
                    "with --resume, or pass mode='overwrite' to discard it"
                )
            self._fh = self.path.open("a" if mode == "append" else "w",
                                      encoding="utf-8")

    # ------------------------------------------------------------------
    @classmethod
    def follow(cls, path: str | Path, *, offset: int = 0) -> JournalFollower:
        """An incremental tail reader over a journal file.

        Used by the SSE event streamer of ``repro serve`` (replayable
        from a byte offset, so reconnects are deterministic) and by
        :meth:`read` / ``repro batch --resume`` (one drain of the whole
        file).  See :class:`JournalFollower`.
        """
        return JournalFollower(path, offset=offset)

    @classmethod
    def read(cls, path: str | Path) -> list[dict[str, Any]]:
        """Recover the event stream of a (possibly torn) journal file.

        One full drain of a :class:`JournalFollower`: a run killed
        mid-write leaves at most one torn trailing line (no newline),
        which stays unconsumed and is reported with a
        :class:`RuntimeWarning`; corrupt complete lines are skipped
        (also warned about), so recovery always yields every decodable
        event in order.
        """
        path = Path(path)
        path.stat()  # surface missing files as OSError, like read_text did
        follower = cls.follow(path)
        events = follower.poll()
        if follower.pending:
            warnings.warn(
                f"journal {path}: skipping torn trailing line",
                RuntimeWarning,
                stacklevel=2,
            )
        return events

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> dict[str, Any]:
        """Record one event (and flush it to the JSONL file, if any).

        A failed file write (``ENOSPC``, a vanished fd) must not kill
        the run it is meant to make recoverable: the journal warns
        once, drops its file backing and keeps collecting events
        in-memory.  The file keeps every event flushed before the
        failure -- at worst plus one torn line, which :meth:`read`
        already skips.
        """
        record: dict[str, Any] = {"t": round(clock.wall(), 3), "event": event}
        record.update(fields)
        self.events.append(record)
        if self._fh is not None:
            try:
                self._fh.write(json.dumps(record, sort_keys=True) + "\n")
                self._fh.flush()
            except OSError as exc:
                warnings.warn(
                    f"journal {self.path}: disabling file backing after "
                    f"write failure ({exc}); events continue in-memory",
                    RuntimeWarning,
                    stacklevel=2,
                )
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
        return record

    def count(self, event: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for record in self.events if record["event"] == event)

    def of(self, event: str) -> list[dict[str, Any]]:
        """All recorded events of one kind, in order."""
        return [record for record in self.events if record["event"] == event]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the backing file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
