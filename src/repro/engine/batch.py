"""Batch orchestration: verify many specifications fast and reproducibly.

:func:`run_batch` is the engine's front door.  It fingerprints every
job's specification, replays cached results where possible, runs the
remainder through a serial or parallel runner, journals every event
and persists fresh results back into the cache:

    jobs ──fingerprint──► cache? ──hit──────────────► results
                             │
                            miss ──runner (N procs)──► results ──► cache

The returned :class:`BatchReport` keeps results in input-job order (so
serial and parallel runs compare equal), knows the CLI exit status and
renders the end-of-run summary table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..analysis.reporting import batch_summary_table
from .cache import ResultCache
from .fingerprint import ENGINE_VERSION, spec_fingerprint
from .job import JobResult, JobStatus, VerificationJob
from .journal import RunJournal
from .runner import ParallelRunner, SerialRunner, make_runner

__all__ = ["BatchReport", "run_batch"]


@dataclass
class BatchReport:
    """Everything produced by one :func:`run_batch` call."""

    results: list[JobResult]
    wall: float
    journal: RunJournal = field(default_factory=RunJournal)

    # ------------------------------------------------------------------
    @property
    def verified(self) -> int:
        """Jobs whose specification verified cleanly."""
        return sum(1 for r in self.results if r.status == JobStatus.VERIFIED)

    @property
    def violations(self) -> int:
        """Jobs whose verification found coherence violations."""
        return sum(1 for r in self.results if r.status == JobStatus.VIOLATION)

    @property
    def errors(self) -> int:
        """Jobs that errored, timed out or crashed."""
        return sum(1 for r in self.results if not r.completed)

    @property
    def cache_hits(self) -> int:
        """Jobs replayed from the persistent cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def ok(self) -> bool:
        """True iff every job completed and verified."""
        return self.verified == len(self.results)

    @property
    def exit_code(self) -> int:
        """CLI exit status: 0 ok, 1 violations found, 2 job errors."""
        if self.errors:
            return 2
        if self.violations:
            return 1
        return 0

    # ------------------------------------------------------------------
    def rows(self) -> list[list[str]]:
        """Summary-table rows, one per job in input order."""
        rows = []
        for result in self.results:
            payload = result.payload
            rows.append(
                [
                    result.job.label,
                    result.verdict,
                    str(len(payload["essential_states"])) if payload else "-",
                    str(payload["stats"]["visits"]) if payload else "-",
                    f"{result.elapsed * 1000:.0f} ms",
                    "cache" if result.cached else "run",
                ]
            )
        return rows

    def summary_table(self) -> str:
        """The end-of-run summary table."""
        return batch_summary_table(self.rows())

    def counts_line(self) -> str:
        """One-line roll-up printed under the summary table."""
        return (
            f"{len(self.results)} jobs: {self.verified} verified, "
            f"{self.violations} with violations, {self.errors} errors; "
            f"{self.cache_hits} cache hits; wall {self.wall:.2f}s"
        )


def run_batch(
    jobs: Sequence[VerificationJob],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    timeout: float | None = None,
    retries: int = 1,
    runner: SerialRunner | ParallelRunner | None = None,
) -> BatchReport:
    """Verify every job, reusing cached results and journaling the run.

    Parameters
    ----------
    jobs:
        The work list; results come back in the same order.
    workers:
        Worker processes.  ``1`` (with no ``timeout``) runs serially in
        this process.
    cache:
        Persistent result cache; ``None`` disables caching entirely.
    journal:
        Event sink; a fresh in-memory journal is created when omitted.
    timeout / retries:
        Per-job wall-clock budget and retry bound for timed-out or
        crashed jobs (timeouts need ``workers >= 1`` processes, see
        :class:`~repro.engine.runner.SerialRunner`).
    runner:
        Explicit runner instance (overrides ``workers``/``timeout``/
        ``retries``); used by tests to compare execution strategies.
    """
    jobs = list(jobs)
    if journal is None:
        journal = RunJournal()
    started = time.perf_counter()
    journal.emit(
        "run_start",
        jobs=len(jobs),
        workers=workers,
        engine=ENGINE_VERSION,
        cache_dir=str(cache.root) if cache is not None else None,
        journal=str(journal.path) if journal.path is not None else None,
    )

    results: list[JobResult | None] = [None] * len(jobs)
    fingerprints: dict[int, str] = {}
    to_run: list[int] = []

    for i, job in enumerate(jobs):
        try:
            fingerprint = spec_fingerprint(job.resolve_spec())
        except Exception as exc:  # noqa: BLE001 - spec errors are data here
            error = f"{type(exc).__name__}: {exc}"
            results[i] = JobResult(job, JobStatus.ERROR, error=error)
            journal.emit("job_start", job=job.label, fingerprint=None)
            _finish(journal, results[i])
            continue
        journal.emit("job_start", job=job.label, fingerprint=fingerprint)
        fingerprints[i] = fingerprint
        if cache is not None:
            hit = cache.get(fingerprint, job)
            if hit is not None:
                results[i] = hit
                journal.emit(
                    "cache_hit",
                    job=job.label,
                    key=cache.key_for(fingerprint, job),
                )
                _finish(journal, hit)
                continue
        to_run.append(i)

    if to_run:
        if runner is None:
            runner = make_runner(workers=workers, timeout=timeout, retries=retries)
        fresh = runner.run(
            [jobs[i] for i in to_run],
            on_event=lambda event, fields: journal.emit(event, **fields),
        )
        for i, result in zip(to_run, fresh):
            result.fingerprint = fingerprints[i]
            results[i] = result
            _finish(journal, result)
            if cache is not None:
                cache.put(fingerprints[i], jobs[i], result)

    final = [r for r in results if r is not None]
    assert len(final) == len(jobs)
    wall = time.perf_counter() - started
    report = BatchReport(results=final, wall=wall, journal=journal)
    journal.emit(
        "run_end",
        jobs=len(jobs),
        verified=report.verified,
        violations=report.violations,
        errors=report.errors,
        cache_hits=report.cache_hits,
        wall=round(wall, 4),
    )
    return report


def _finish(journal: RunJournal, result: JobResult) -> None:
    """Emit the per-job completion record."""
    stats: dict[str, Any] = (
        result.payload.get("stats", {}) if result.payload else {}
    )
    journal.emit(
        "job_finish",
        job=result.job.label,
        status=result.status,
        ok=result.ok,
        cached=result.cached,
        attempts=result.attempts,
        elapsed=round(result.elapsed, 6),
        visits=stats.get("visits"),
        expanded=stats.get("expanded"),
        essential=(
            len(result.payload["essential_states"]) if result.payload else None
        ),
        error=result.error,
    )
