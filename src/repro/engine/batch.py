"""Batch orchestration: verify many specifications fast and reproducibly.

:func:`run_batch` is the engine's front door.  It fingerprints every
job's specification, replays cached results where possible, runs the
remainder through a serial or parallel runner, journals every event
and persists fresh results back into the cache:

    jobs ──fingerprint──► cache? ──hit──────────────► results
                             │
                            miss ──runner (N procs)──► results ──► cache

The returned :class:`BatchReport` keeps results in input-job order (so
serial and parallel runs compare equal), knows the CLI exit status and
renders the end-of-run summary table.

Robustness: results are journaled and cached *incrementally*, the
moment each job finishes -- not at the end of the run -- so a batch
killed at job ``k`` keeps its first ``k`` results.  A ``SIGINT``
flushes a ``run_aborted`` event before re-raising, and
``resume=RunJournal.read(path)`` replays the finished jobs of an
interrupted run (through the journal for terminal errors and through
the result cache for verdicts), re-dispatching only the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from ..obs import NOOP_SPAN
from ..obs import active as _active_collector
from ..obs import clock
from ..analysis.reporting import batch_summary_table, lint_table
from .cache import ResultCache
from .fingerprint import ENGINE_VERSION, spec_fingerprint
from .job import JobResult, JobStatus, VerificationJob
from .journal import RunJournal
from .resilience import BackoffPolicy, BatchCancelled, BreakerState, CircuitBreaker
from .runner import CancelFlag, ParallelRunner, SerialRunner, make_runner

__all__ = ["BatchReport", "run_batch"]


@dataclass
class BatchReport:
    """Everything produced by one :func:`run_batch` call."""

    results: list[JobResult]
    wall: float
    journal: RunJournal = field(default_factory=RunJournal)
    #: Result-cache lookup totals for this run (``None`` when the run
    #: had no cache).  Unlike :attr:`cache_hits`, these come straight
    #: from :class:`~repro.engine.cache.ResultCache` and so also count
    #: corrupted entries rewritten as misses.
    cache_lookup_hits: int | None = None
    cache_lookup_misses: int | None = None

    # ------------------------------------------------------------------
    @property
    def verified(self) -> int:
        """Jobs whose specification verified cleanly."""
        return sum(1 for r in self.results if r.status == JobStatus.VERIFIED)

    @property
    def violations(self) -> int:
        """Jobs whose verification found coherence violations."""
        return sum(1 for r in self.results if r.status == JobStatus.VIOLATION)

    @property
    def not_live(self) -> int:
        """Safety-clean jobs with a starvable request (liveness modes)."""
        return sum(
            1
            for r in self.results
            if r.status == JobStatus.LIVENESS_VIOLATION
        )

    @property
    def errors(self) -> int:
        """Jobs that errored, timed out, crashed or were rejected."""
        return sum(
            1 for r in self.results if not r.completed and not r.partial
        )

    @property
    def partials(self) -> int:
        """Jobs whose budgets expired: partial, inconclusive results."""
        return sum(1 for r in self.results if r.partial)

    @property
    def rejected(self) -> int:
        """Jobs the lint preflight refused to dispatch."""
        return sum(1 for r in self.results if r.status == JobStatus.REJECTED)

    @property
    def quarantined(self) -> int:
        """Jobs the circuit breaker refused to dispatch."""
        return sum(
            1 for r in self.results if r.status == JobStatus.QUARANTINED
        )

    @property
    def cache_hits(self) -> int:
        """Jobs replayed from the persistent cache."""
        return sum(1 for r in self.results if r.cached)

    @property
    def ok(self) -> bool:
        """True iff every job completed and verified."""
        return self.verified == len(self.results)

    @property
    def exit_code(self) -> int:
        """CLI exit status: 0 ok, 1 violations (safety or liveness),
        2 job errors.

        Partial results count as errors here: the batch did not fully
        verify everything, so success cannot be claimed -- but any
        violations found before a budget expired are definitive and
        take the dedicated status.
        """
        if self.errors or self.partials:
            return 2
        if self.violations or self.not_live:
            return 1
        return 0

    # ------------------------------------------------------------------
    def rows(self) -> list[list[str]]:
        """Summary-table rows, one per job in input order."""
        rows = []
        for result in self.results:
            payload = result.payload
            rows.append(
                [
                    result.job.label,
                    result.verdict,
                    str(len(payload["essential_states"])) if payload else "-",
                    str(payload["stats"]["visits"]) if payload else "-",
                    f"{result.elapsed * 1000:.0f} ms",
                    "lint"
                    if result.status == JobStatus.REJECTED
                    else "breaker"
                    if result.status == JobStatus.QUARANTINED
                    else ("cache" if result.cached else "run"),
                ]
            )
        return rows

    def summary_table(self) -> str:
        """The end-of-run summary table."""
        return batch_summary_table(self.rows())

    def lint_rows(self) -> list[list[str]]:
        """One row per preflight finding across all jobs."""
        rows = []
        for result in self.results:
            for finding in result.lint or ():
                location = finding.get("location", {})
                where = location.get("file") or location.get("symbol") or "-"
                if location.get("line") is not None:
                    where += f":{location['line']}"
                rows.append(
                    [
                        result.job.label,
                        finding.get("rule", "?"),
                        finding.get("severity", "?"),
                        where,
                        finding.get("message", ""),
                    ]
                )
        return rows

    def lint_table(self) -> str:
        """Rendered preflight-findings table ('' when there are none)."""
        rows = self.lint_rows()
        if not rows:
            return ""
        return lint_table(rows)

    def counts_line(self) -> str:
        """One-line roll-up printed under the summary table."""
        line = (
            f"{len(self.results)} jobs: {self.verified} verified, "
            f"{self.violations} with violations, {self.errors} errors"
        )
        if self.not_live:
            line += f", {self.not_live} not live"
        if self.partials:
            line += f", {self.partials} partial"
        if self.rejected:
            line += f" ({self.rejected} rejected by preflight)"
        if self.quarantined:
            line += f" ({self.quarantined} quarantined by breaker)"
        line += f"; {self.cache_hits} cache hits"
        if self.cache_lookup_misses is not None:
            line += f" / {self.cache_lookup_misses} misses"
        line += f"; wall {self.wall:.2f}s"
        return line


def run_batch(
    jobs: Sequence[VerificationJob],
    *,
    workers: int = 1,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    timeout: float | None = None,
    retries: int = 1,
    grace: float | None = None,
    runner: SerialRunner | ParallelRunner | None = None,
    preflight: str | None = None,
    backend: str | None = None,
    mode: str | None = None,
    resume: Sequence[dict[str, Any]] | None = None,
    backoff: BackoffPolicy | None = None,
    breaker: CircuitBreaker | None = None,
    cancel: CancelFlag | None = None,
) -> BatchReport:
    """Verify every job, reusing cached results and journaling the run.

    Parameters
    ----------
    jobs:
        The work list; results come back in the same order.
    workers:
        Worker processes.  ``1`` (with no ``timeout``) runs serially in
        this process.
    cache:
        Persistent result cache; ``None`` disables caching entirely.
    journal:
        Event sink; a fresh in-memory journal is created when omitted.
    timeout / retries:
        Per-job wall-clock budget and retry bound for timed-out or
        crashed jobs (timeouts need ``workers >= 1`` processes, see
        :class:`~repro.engine.runner.SerialRunner`).
    grace:
        Soft-cancel window for timed-out workers: how long they get to
        emit a partial result before SIGKILL (parallel runners only;
        ``None`` keeps the runner default).
    runner:
        Explicit runner instance (overrides ``workers``/``timeout``/
        ``retries``/``grace``); used by tests to compare execution
        strategies.
    preflight:
        Override every job's ``preflight`` mode (``"off"``,
        ``"reject"`` or ``"annotate"``); ``None`` honours the per-job
        setting.  Preflight runs in *this* process, before cache lookup
        and worker dispatch: a rejected job never reaches a worker.
    backend:
        Override every job's expansion ``backend`` (``"interp"`` or
        ``"kernel"``); ``None`` honours the per-job setting.  The
        override rewrites the jobs themselves, so cache keys and
        journal metadata reflect the backend that actually ran.
    mode:
        Override every job's verification ``mode`` (``"safety"``,
        ``"liveness"`` or ``"both"``, see :mod:`repro.liveness`);
        ``None`` honours the per-job setting.  Like ``backend``, the
        override rewrites the jobs themselves, so cache keys and
        journal metadata reflect the mode that actually ran.
    resume:
        Event stream of an interrupted run (``RunJournal.read(path)``):
        jobs whose ``job_finish`` record carries a terminal
        ``error``/``rejected`` status are adopted from the journal
        without re-dispatching; verified / violation / partial verdicts
        replay through the result cache as usual; timed-out and crashed
        jobs -- and anything the interrupt cut short -- are re-run.
    backoff:
        Retry backoff policy (:class:`~repro.engine.resilience.
        BackoffPolicy`): timed-out/crashed jobs are redispatched after
        an exponentially growing, deterministically jittered delay
        instead of immediately.  Parallel runners only.
    breaker:
        Circuit breaker (:class:`~repro.engine.resilience.
        CircuitBreaker`) keyed by spec fingerprint: specs already
        quarantined are refused at admission with a ``quarantined``
        result (``breaker_open`` journal event, never cached), and
        repeated crashes/hangs during this run trip the breaker
        mid-flight.  Share one breaker across calls to carry
        quarantine state between campaigns.
    cancel:
        Graceful-drain flag (anything with ``is_set()``): when another
        thread sets it, dispatch stops, in-flight jobs are
        soft-cancelled through their guards and the batch raises
        :class:`~repro.engine.resilience.BatchCancelled` after
        flushing a resumable ``run_aborted`` journal -- the same
        contract as ``SIGINT``, minus the signal.

    A ``KeyboardInterrupt`` mid-dispatch flushes a ``run_aborted``
    event (results finished so far are already journaled and cached --
    both happen incrementally) and re-raises, so the run can later be
    picked up with ``resume``.
    """
    if preflight not in (None, "off", "reject", "annotate"):
        raise ValueError(
            "preflight must be None, 'off', 'reject' or 'annotate', "
            f"not {preflight!r}"
        )
    if backend not in (None, "interp", "kernel"):
        raise ValueError(
            f"backend must be None, 'interp' or 'kernel', not {backend!r}"
        )
    if mode not in (None, "safety", "liveness", "both"):
        raise ValueError(
            f"mode must be None, 'safety', 'liveness' or 'both', not {mode!r}"
        )
    jobs = list(jobs)
    if backend is not None:
        jobs = [
            job if job.backend == backend else replace(job, backend=backend)
            for job in jobs
        ]
    if mode is not None:
        jobs = [
            job if job.mode == mode else replace(job, mode=mode)
            for job in jobs
        ]
    if journal is None:
        journal = RunJournal()
    started = clock.monotonic()
    coll = _active_collector()
    if coll is not None:
        coll.count("engine.jobs", len(jobs))
        # Touch the cache counters so profile reports always show them,
        # even for cache-less (or all-miss) runs; ResultCache.get does
        # the actual per-lookup counting.
        coll.count("engine.cache.hits", 0)
        coll.count("engine.cache.misses", 0)
    cache_hits_before, cache_misses_before = (
        (cache.hits, cache.misses) if cache is not None else (0, 0)
    )
    journal.emit(
        "run_start",
        jobs=len(jobs),
        workers=workers,
        engine=ENGINE_VERSION,
        cache_dir=str(cache.root) if cache is not None else None,
        journal=str(journal.path) if journal.path is not None else None,
        preflight=preflight,
        backend=backend,
        mode=mode,
    )

    # A resumed run adopts the prior journal's terminal error/rejected
    # records outright; everything else goes through normal admission
    # (where the incremental cache turns finished verdicts into hits).
    replayable: dict[str, dict[str, Any]] = {}
    if resume is not None:
        finished_prior: dict[str, dict[str, Any]] = {}
        for record in resume:
            if record.get("event") == "job_finish" and "job" in record:
                finished_prior[record["job"]] = record
        replayable = {
            label: record
            for label, record in finished_prior.items()
            if record.get("status") in (JobStatus.ERROR, JobStatus.REJECTED)
        }
        journal.emit(
            "run_resume",
            journal=str(journal.path) if journal.path is not None else None,
            completed=len(finished_prior),
            remaining=sum(
                1 for job in jobs if job.label not in finished_prior
            ),
        )

    results: list[JobResult | None] = [None] * len(jobs)
    fingerprints: dict[int, str] = {}
    lint_findings: dict[int, list[dict[str, Any]]] = {}
    to_run: list[int] = []

    with coll.span("batch.admit", jobs=len(jobs)) if coll is not None else NOOP_SPAN:
        for i, job in enumerate(jobs):
            prior = replayable.get(job.label)
            if prior is not None:
                results[i] = JobResult(
                    job,
                    prior["status"],
                    error=prior.get("error"),
                    attempts=int(prior.get("attempts", 1)),
                    elapsed=float(prior.get("elapsed", 0.0)),
                )
                journal.emit(
                    "job_replayed", job=job.label, status=prior["status"]
                )
                _finish(journal, results[i])
                continue
            mode = preflight if preflight is not None else job.preflight
            if mode != "off":
                try:
                    rejected = _preflight(journal, job, mode, lint_findings, i)
                except Exception as exc:  # noqa: BLE001 - spec errors are data
                    error = f"{type(exc).__name__}: {exc}"
                    results[i] = JobResult(job, JobStatus.ERROR, error=error)
                    journal.emit("job_start", job=job.label, fingerprint=None)
                    _finish(journal, results[i])
                    continue
                if rejected is not None:
                    results[i] = rejected
                    journal.emit("job_start", job=job.label, fingerprint=None)
                    _finish(journal, rejected)
                    continue
            try:
                fingerprint = spec_fingerprint(job.resolve_spec())
            except Exception as exc:  # noqa: BLE001 - spec errors are data here
                error = f"{type(exc).__name__}: {exc}"
                results[i] = JobResult(
                    job, JobStatus.ERROR, error=error, lint=lint_findings.get(i)
                )
                journal.emit("job_start", job=job.label, fingerprint=None)
                _finish(journal, results[i])
                continue
            journal.emit("job_start", job=job.label, fingerprint=fingerprint)
            fingerprints[i] = fingerprint
            if cache is not None:
                hit = cache.get(fingerprint, job)
                if hit is not None:
                    hit.lint = lint_findings.get(i)
                    results[i] = hit
                    journal.emit(
                        "cache_hit",
                        job=job.label,
                        key=cache.key_for(fingerprint, job),
                    )
                    _finish(journal, hit)
                    continue
            # Cache misses that would hit a tripped breaker are refused
            # here, before any worker sees them (cache hits above are
            # served regardless -- quarantine protects workers, and a
            # replay touches none).  A half-open breaker lets the job
            # through: the runner dispatches it as the cooldown probe.
            if (
                breaker is not None
                and breaker.state(fingerprint) == BreakerState.OPEN
            ):
                journal.emit(
                    "breaker_open",
                    job=job.label,
                    key=fingerprint,
                    reason="open",
                    transition="open",
                    retry_after=round(breaker.retry_after(fingerprint), 3),
                )
                results[i] = JobResult(
                    job,
                    JobStatus.QUARANTINED,
                    error=(
                        "circuit breaker open for this spec fingerprint "
                        f"(retry after {breaker.retry_after(fingerprint):.1f}s)"
                    ),
                    attempts=0,
                    lint=lint_findings.get(i),
                )
                _finish(journal, results[i])
                continue
            to_run.append(i)

    if to_run:
        if runner is None:
            runner = make_runner(
                workers=workers,
                timeout=timeout,
                retries=retries,
                grace=grace,
                backoff=backoff,
                breaker=breaker,
            )

        def on_result(k: int, result: JobResult) -> None:
            # Cache then journal the moment a job finishes: a batch
            # killed mid-run keeps everything finished so far, and a
            # journaled job_finish always implies the cache entry
            # (when cacheable) already landed -- which is what lets a
            # resumed run trust the journal.
            i = to_run[k]
            result.fingerprint = fingerprints[i]
            result.lint = lint_findings.get(i)
            results[i] = result
            if cache is not None:
                cache.put(fingerprints[i], jobs[i], result)
            _finish(journal, result)

        run_kwargs: dict[str, Any] = {}
        if backoff is not None or breaker is not None:
            run_kwargs["keys"] = [fingerprints[i] for i in to_run]
        if cancel is not None:
            run_kwargs["cancel"] = cancel
        try:
            with (
                coll.span("batch.dispatch", jobs=len(to_run))
                if coll is not None
                else NOOP_SPAN
            ):
                runner.run(
                    [jobs[i] for i in to_run],
                    on_event=lambda event, fields: journal.emit(event, **fields),
                    on_result=on_result,
                    **run_kwargs,
                )
        except (KeyboardInterrupt, BatchCancelled):
            journal.emit(
                "run_aborted",
                jobs=len(jobs),
                finished=sum(1 for r in results if r is not None),
            )
            journal.close()
            raise

    final = [r for r in results if r is not None]
    assert len(final) == len(jobs)
    wall = clock.monotonic() - started
    report = BatchReport(results=final, wall=wall, journal=journal)
    if cache is not None:
        report.cache_lookup_hits = cache.hits - cache_hits_before
        report.cache_lookup_misses = cache.misses - cache_misses_before
    journal.emit(
        "run_end",
        jobs=len(jobs),
        verified=report.verified,
        violations=report.violations,
        not_live=report.not_live,
        errors=report.errors,
        partials=report.partials,
        rejected=report.rejected,
        quarantined=report.quarantined,
        cache_hits=report.cache_hits,
        cache_lookups=(
            {
                "hits": report.cache_lookup_hits,
                "misses": report.cache_lookup_misses,
            }
            if cache is not None
            else None
        ),
        wall=round(wall, 4),
        # Self-profiling runs (an active repro.obs collector) stamp the
        # run's metric totals into the journal's final event.
        metrics=coll.metrics_snapshot() if coll is not None else None,
    )
    return report


def _lint_job(job: VerificationJob):
    """Lint the specification a job will verify, without validating it.

    ``resolve_spec`` runs the full structural validation for DSL files,
    which raises on exactly the problems the linter is meant to report;
    spec-file jobs are therefore parsed leniently here (syntax errors
    become ``PL000`` findings) so statically-broken files reach the
    analyzer instead of blowing up before it.
    """
    from ..lint import lint_source, lint_spec

    if job.spec_file is not None:
        from pathlib import Path

        text = Path(job.spec_file).read_text(encoding="utf-8")
        if job.mutant is None:
            return lint_source(
                text, name=Path(job.spec_file).stem, path=job.spec_file
            )
        from ..protocols.dsl import parse_protocol
        from ..protocols.mutations import get_mutant

        spec = parse_protocol(
            text,
            default_name=Path(job.spec_file).stem,
            source_path=job.spec_file,
        )
        return lint_spec(get_mutant(spec, job.mutant), target=job.label)
    return lint_spec(job.resolve_spec(), target=job.label)


def _preflight(
    journal: RunJournal,
    job: VerificationJob,
    mode: str,
    lint_findings: dict[int, list[dict[str, Any]]],
    index: int,
) -> JobResult | None:
    """Lint one job's spec before dispatch; a result means rejection.

    Emits the ``lint`` journal event, stashes the findings for
    attachment to whatever result the job eventually produces, and --
    in ``"reject"`` mode -- returns a terminal ``rejected`` result for
    specs failing an error-severity rule.
    """
    report = _lint_job(job)
    findings = [d.to_dict() for d in report.diagnostics]
    journal.emit(
        "lint",
        job=job.label,
        mode=mode,
        errors=report.errors,
        warnings=report.warnings,
        infos=report.infos,
        suppressed=len(report.suppressed),
        findings=findings,
    )
    if findings:
        lint_findings[index] = findings
    if mode == "reject" and not report.ok:
        coll = _active_collector()
        if coll is not None:
            coll.count("engine.preflight.rejected")
        first = next(
            d for d in report.diagnostics if d.severity.value == "error"
        )
        return JobResult(
            job,
            JobStatus.REJECTED,
            error=(
                f"preflight: {report.errors} lint error"
                f"{'s' if report.errors != 1 else ''} "
                f"({first.rule}: {first.message})"
            ),
            lint=findings,
        )
    return None


def _finish(journal: RunJournal, result: JobResult) -> None:
    """Emit the per-job completion record."""
    stats: dict[str, Any] = (
        result.payload.get("stats", {}) if result.payload else {}
    )
    if result.partial:
        coll = _active_collector()
        if coll is not None:
            coll.count("engine.partial")
    journal.emit(
        "job_finish",
        job=result.job.label,
        status=result.status,
        ok=result.ok,
        cached=result.cached,
        attempts=result.attempts,
        elapsed=round(result.elapsed, 6),
        visits=stats.get("visits"),
        expanded=stats.get("expanded"),
        essential=(
            len(result.payload["essential_states"]) if result.payload else None
        ),
        error=result.error,
    )
