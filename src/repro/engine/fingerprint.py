"""Spec fingerprints and cache keys.

A *fingerprint* is a stable content hash of a protocol specification:
SHA-256 over the canonical JSON rendering produced by
:func:`repro.core.serialize.spec_to_dict` (the full behavioural table
plus structural attributes).  Two instances of the same protocol --
across processes, runs and Python versions -- hash identically, while
any behavioural edit (a mutation, a perturbation, a changed DSL rule)
changes the hash.

A *job key* extends the fingerprint with the verification options and
the engine version; it addresses entries in the persistent result
cache (:mod:`repro.engine.cache`).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from ..core.protocol import ProtocolSpec
from ..core.serialize import spec_to_dict
from .job import VerificationJob

__all__ = [
    "ENGINE_VERSION",
    "canonical_json",
    "spec_fingerprint",
    "job_key",
]

#: Version of the engine's result payload / fingerprint semantics.
#: Bump whenever :func:`spec_to_dict` or :func:`result_to_dict` change
#: shape, so stale cache entries are never replayed.
#: "2": budgets joined the job key and payloads may carry a
#: ``partial`` section.
#: "3": the expansion backend joined the job key.
#: "4": the verification mode joined the job key and liveness-mode
#: payloads carry a ``liveness`` section.
ENGINE_VERSION = "4"


def canonical_json(payload: Any) -> str:
    """Minimal, key-sorted JSON -- the hashing wire format."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_fingerprint(spec: ProtocolSpec) -> str:
    """Stable content hash (hex SHA-256) of a protocol specification."""
    return hashlib.sha256(
        canonical_json(spec_to_dict(spec)).encode("utf-8")
    ).hexdigest()


def job_key(fingerprint: str, job: VerificationJob) -> str:
    """Content address of one job's result in the persistent cache.

    Only option fields that influence the verification result
    participate; the spec itself is represented by its fingerprint, so
    e.g. a registry job and a DSL job for behaviourally identical specs
    share an entry.  The resource budgets participate because an
    exhausted budget produces a *partial* payload: a partial result may
    only be replayed for a job that requested the very same budgets.
    """
    return hashlib.sha256(
        canonical_json(
            {
                "engine": ENGINE_VERSION,
                "fingerprint": fingerprint,
                "augmented": job.augmented,
                "pruning": job.pruning,
                "backend": job.backend,
                "mode": job.mode,
                "max_visits": job.max_visits,
                "deadline": job.deadline,
                "max_states": job.max_states,
                "max_rss_mb": job.max_rss_mb,
            }
        ).encode("utf-8")
    ).hexdigest()
