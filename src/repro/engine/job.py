"""Verification jobs: the unit of work of the batch engine.

A :class:`VerificationJob` is a small, picklable description of "verify
this specification with these options".  The specification itself is
named indirectly whenever possible (registry name + optional mutation
key, or a DSL spec file path) so that jobs cross process boundaries as
a few strings; ad-hoc specifications (e.g. the perturbation sweep's
single-point edits) can be embedded directly as ``spec``.

:func:`execute_job` is the single execution path used by every runner
-- serial or parallel, fresh or replayed from cache they all produce
the same :class:`JobResult` shape, whose ``payload`` is exactly
:func:`repro.core.serialize.result_to_dict` of the verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..obs import clock
from ..core.essential import PruningMode
from ..core.protocol import ProtocolSpec
from ..core.serialize import result_to_dict
from ..core.verifier import verify

__all__ = [
    "JobStatus",
    "VerificationJob",
    "JobResult",
    "execute_job",
]


class JobStatus:
    """Terminal status of one job (plain strings, JSON-friendly)."""

    VERIFIED = "verified"
    VIOLATION = "violation"
    ERROR = "error"
    TIMEOUT = "timeout"
    CRASH = "crash"
    #: The lint preflight refused to dispatch a statically-broken spec.
    REJECTED = "rejected"

    #: Statuses for which a verification actually completed and
    #: produced a payload.
    COMPLETED = (VERIFIED, VIOLATION)


@dataclass(frozen=True)
class VerificationJob:
    """One unit of batch-verification work.

    Exactly one spec source must be given: ``protocol`` (registry
    name), ``spec_file`` (DSL path) or ``spec`` (an in-memory
    specification).  ``mutant`` optionally applies a named mutation to
    the resolved specification.

    ``preflight`` asks the batch engine to statically analyze the
    resolved specification *before dispatching it to a worker*:
    ``"reject"`` turns error-severity findings into a ``rejected``
    result (no worker ever sees the job), ``"annotate"`` records the
    findings on the result but verifies anyway, ``"off"`` (the
    default) skips the analysis.  Preflight never changes a verdict,
    so it is deliberately *not* part of the cache key.
    """

    protocol: str | None = None
    mutant: str | None = None
    spec_file: str | None = None
    spec: ProtocolSpec | None = field(default=None, compare=False)
    augmented: bool = True
    pruning: str = PruningMode.CONTAINMENT.value
    max_visits: int = 1_000_000
    validate_spec: bool = False
    preflight: str = "off"
    label: str = ""

    def __post_init__(self) -> None:
        sources = [
            s for s in (self.protocol, self.spec_file, self.spec) if s is not None
        ]
        if len(sources) != 1:
            raise ValueError(
                "a VerificationJob needs exactly one of protocol / "
                "spec_file / spec"
            )
        if self.preflight not in ("off", "reject", "annotate"):
            raise ValueError(
                "preflight must be 'off', 'reject' or 'annotate', "
                f"not {self.preflight!r}"
            )
        if not self.label:
            object.__setattr__(self, "label", self._default_label())

    def _default_label(self) -> str:
        if self.protocol is not None:
            base = self.protocol
        elif self.spec_file is not None:
            base = Path(self.spec_file).stem
        else:
            assert self.spec is not None
            base = self.spec.name
        return f"{base}+{self.mutant}" if self.mutant else base

    # ------------------------------------------------------------------
    def resolve_spec(self) -> ProtocolSpec:
        """Instantiate the protocol this job verifies.

        Raises ``KeyError`` (unknown protocol/mutation), ``OSError`` or
        ``DslError`` (bad spec file) -- callers map these to the
        usage-error exit status.
        """
        if self.spec is not None:
            spec = self.spec
        elif self.spec_file is not None:
            from ..protocols.dsl import load_protocol

            spec = load_protocol(self.spec_file)
        else:
            from ..protocols.registry import get_protocol

            assert self.protocol is not None
            spec = get_protocol(self.protocol)
        if self.mutant is not None:
            from ..protocols.mutations import get_mutant

            spec = get_mutant(spec, self.mutant)
        return spec

    def to_meta(self) -> dict[str, Any]:
        """JSON-able description of the job (for cache/journal records)."""
        return {
            "label": self.label,
            "protocol": self.protocol,
            "mutant": self.mutant,
            "spec_file": self.spec_file,
            "inline_spec": self.spec.name if self.spec is not None else None,
            "augmented": self.augmented,
            "pruning": self.pruning,
            "max_visits": self.max_visits,
            "validate_spec": self.validate_spec,
            "preflight": self.preflight,
        }


@dataclass
class JobResult:
    """Outcome of one job, however it was obtained.

    ``payload`` is the :func:`result_to_dict` rendering of the
    verification (present iff the verification completed); ``cached``
    marks results replayed from the persistent cache.
    """

    job: VerificationJob
    status: str
    payload: dict[str, Any] | None = None
    error: str | None = None
    attempts: int = 1
    elapsed: float = 0.0
    cached: bool = False
    fingerprint: str | None = None
    #: Preflight findings (``Diagnostic.to_dict()`` records), attached
    #: when the job ran with ``preflight`` enabled.
    lint: list[dict[str, Any]] | None = None

    @property
    def completed(self) -> bool:
        """True iff a verification ran to completion (either verdict)."""
        return self.status in JobStatus.COMPLETED

    @property
    def ok(self) -> bool:
        """True iff the specification verified cleanly."""
        return self.status == JobStatus.VERIFIED

    @property
    def verdict(self) -> str:
        """Display verdict for summary tables."""
        return {
            JobStatus.VERIFIED: "VERIFIED",
            JobStatus.VIOLATION: "FAILED",
            JobStatus.ERROR: "ERROR",
            JobStatus.TIMEOUT: "TIMEOUT",
            JobStatus.CRASH: "CRASH",
            JobStatus.REJECTED: "REJECTED",
        }[self.status]


def execute_job(job: VerificationJob) -> JobResult:
    """Run one job to completion in the current process.

    Never raises: resolution or verification failures are folded into
    an ``error``-status result so one bad specification cannot abort a
    sweep (the parallel runner additionally guards against crashes and
    hangs at the process level).
    """
    started = clock.monotonic()
    try:
        spec = job.resolve_spec()
        report = verify(
            spec,
            augmented=job.augmented,
            pruning=PruningMode(job.pruning),
            max_visits=job.max_visits,
            validate_spec=job.validate_spec,
        )
        status = JobStatus.VERIFIED if report.ok else JobStatus.VIOLATION
        return JobResult(
            job,
            status,
            payload=result_to_dict(report.result),
            elapsed=clock.monotonic() - started,
        )
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return JobResult(
            job,
            JobStatus.ERROR,
            error=f"{type(exc).__name__}: {exc}",
            elapsed=clock.monotonic() - started,
        )
