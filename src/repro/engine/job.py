"""Verification jobs: the unit of work of the batch engine.

A :class:`VerificationJob` is a small, picklable description of "verify
this specification with these options".  The specification itself is
named indirectly whenever possible (registry name + optional mutation
key, or a DSL spec file path) so that jobs cross process boundaries as
a few strings; ad-hoc specifications (e.g. the perturbation sweep's
single-point edits) can be embedded directly as ``spec``.

:func:`execute_job` is the single execution path used by every runner
-- serial or parallel, fresh or replayed from cache they all produce
the same :class:`JobResult` shape, whose ``payload`` is exactly
:func:`repro.core.serialize.result_to_dict` of the verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..obs import clock
from ..core.essential import PruningMode
from ..core.protocol import ProtocolSpec
from ..core.serialize import result_to_dict
from ..core.verifier import verify
from .guard import Budget, Guard, _CancelFlag

__all__ = [
    "JobStatus",
    "VerificationJob",
    "JobResult",
    "execute_job",
]


class JobStatus:
    """Terminal status of one job (plain strings, JSON-friendly)."""

    VERIFIED = "verified"
    VIOLATION = "violation"
    ERROR = "error"
    TIMEOUT = "timeout"
    CRASH = "crash"
    #: The lint preflight refused to dispatch a statically-broken spec.
    REJECTED = "rejected"
    #: The circuit breaker refused to dispatch a spec whose fingerprint
    #: has repeatedly crashed or hung workers (see
    #: :class:`repro.engine.resilience.CircuitBreaker`).  Terminal for
    #: this run, but never cached: the breaker may have cooled down by
    #: the next run, so a resume re-admits the job through a half-open
    #: probe.
    QUARANTINED = "quarantined"
    #: A guard budget (deadline, visits, states, RSS, soft-cancel)
    #: expired before the fixpoint: the payload carries everything
    #: computed so far, but the verdict is inconclusive.
    PARTIAL = "partial"
    #: A liveness-mode job found no erroneous state but did find a
    #: starvable request: the payload's ``liveness`` key carries the
    #: lasso witnesses.  A safety violation takes precedence -- a job
    #: is ``violation`` even if it is also not live.
    LIVENESS_VIOLATION = "liveness-violation"

    #: Statuses for which a verification actually completed and
    #: produced a payload.
    COMPLETED = (VERIFIED, VIOLATION, LIVENESS_VIOLATION)
    #: Statuses that carry a (possibly partial) verification payload.
    WITH_PAYLOAD = (VERIFIED, VIOLATION, LIVENESS_VIOLATION, PARTIAL)


@dataclass(frozen=True)
class VerificationJob:
    """One unit of batch-verification work.

    Exactly one spec source must be given: ``protocol`` (registry
    name), ``spec_file`` (DSL path) or ``spec`` (an in-memory
    specification).  ``mutant`` optionally applies a named mutation to
    the resolved specification.

    ``preflight`` asks the batch engine to statically analyze the
    resolved specification *before dispatching it to a worker*:
    ``"reject"`` turns error-severity findings into a ``rejected``
    result (no worker ever sees the job), ``"annotate"`` records the
    findings on the result but verifies anyway, ``"off"`` (the
    default) skips the analysis.  The analysis runs the full rule set,
    including the flow-sensitive rules over the guarded-action IR
    (:mod:`repro.lint.flow`), which stay warning-severity: only
    probe-level errors reject a job.  Preflight never changes a
    verdict, so it is deliberately *not* part of the cache key.

    ``deadline`` / ``max_visits`` / ``max_states`` / ``max_rss_mb``
    are the job's cooperative resource budgets (see
    :mod:`repro.engine.guard`): an exhausted budget yields a
    structured ``partial`` result instead of an error.  They *are*
    part of the cache key -- a partial result is only replayed for a
    job requesting the same budgets.

    ``backend`` selects the expansion engine (``"interp"`` or
    ``"kernel"``, see :mod:`repro.kernel`).  It is part of the cache
    key: both backends produce identical verdicts, but keeping the
    payloads separate means a cached entry always says which engine
    produced it -- and the documented ``stats.scenarios`` divergence
    on warm kernel runs never leaks across backends.

    ``mode`` selects what is checked (``"safety"``, ``"liveness"`` or
    ``"both"``, see :mod:`repro.liveness`): liveness modes run the
    starvation analysis after the expansion and report starvable
    requests as ``liveness-violation`` results.  It is part of the
    cache key -- the payloads differ (the ``liveness`` key) even
    though the expansion itself is identical.
    """

    protocol: str | None = None
    mutant: str | None = None
    spec_file: str | None = None
    spec: ProtocolSpec | None = field(default=None, compare=False)
    augmented: bool = True
    pruning: str = PruningMode.CONTAINMENT.value
    max_visits: int = 1_000_000
    validate_spec: bool = False
    preflight: str = "off"
    backend: str = "interp"
    mode: str = "safety"
    deadline: float | None = None
    max_states: int | None = None
    max_rss_mb: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        sources = [
            s for s in (self.protocol, self.spec_file, self.spec) if s is not None
        ]
        if len(sources) != 1:
            raise ValueError(
                "a VerificationJob needs exactly one of protocol / "
                "spec_file / spec"
            )
        if self.preflight not in ("off", "reject", "annotate"):
            raise ValueError(
                "preflight must be 'off', 'reject' or 'annotate', "
                f"not {self.preflight!r}"
            )
        if self.backend not in ("interp", "kernel"):
            raise ValueError(
                f"backend must be 'interp' or 'kernel', not {self.backend!r}"
            )
        if self.mode not in ("safety", "liveness", "both"):
            raise ValueError(
                f"mode must be 'safety', 'liveness' or 'both', "
                f"not {self.mode!r}"
            )
        if not self.label:
            object.__setattr__(self, "label", self._default_label())

    def _default_label(self) -> str:
        if self.protocol is not None:
            base = self.protocol
        elif self.spec_file is not None:
            base = Path(self.spec_file).stem
        else:
            assert self.spec is not None
            base = self.spec.name
        return f"{base}+{self.mutant}" if self.mutant else base

    # ------------------------------------------------------------------
    def resolve_spec(self) -> ProtocolSpec:
        """Instantiate the protocol this job verifies.

        Raises ``KeyError`` (unknown protocol/mutation), ``OSError`` or
        ``DslError`` (bad spec file) -- callers map these to the
        usage-error exit status.
        """
        if self.spec is not None:
            spec = self.spec
        elif self.spec_file is not None:
            from ..protocols.dsl import load_protocol

            spec = load_protocol(self.spec_file)
        else:
            from ..protocols.registry import get_protocol

            assert self.protocol is not None
            spec = get_protocol(self.protocol)
        if self.mutant is not None:
            from ..protocols.mutations import get_mutant

            spec = get_mutant(spec, self.mutant)
        return spec

    def to_meta(self) -> dict[str, Any]:
        """JSON-able description of the job (for cache/journal records)."""
        return {
            "label": self.label,
            "protocol": self.protocol,
            "mutant": self.mutant,
            "spec_file": self.spec_file,
            "inline_spec": self.spec.name if self.spec is not None else None,
            "augmented": self.augmented,
            "pruning": self.pruning,
            "max_visits": self.max_visits,
            "validate_spec": self.validate_spec,
            "preflight": self.preflight,
            "backend": self.backend,
            "mode": self.mode,
            "deadline": self.deadline,
            "max_states": self.max_states,
            "max_rss_mb": self.max_rss_mb,
        }

    def budget(self) -> Budget:
        """The cooperative resource budget this job runs under."""
        return Budget(
            deadline=self.deadline,
            max_visits=self.max_visits,
            max_states=self.max_states,
            max_rss_mb=self.max_rss_mb,
        )


@dataclass
class JobResult:
    """Outcome of one job, however it was obtained.

    ``payload`` is the :func:`result_to_dict` rendering of the
    verification (present iff the verification completed); ``cached``
    marks results replayed from the persistent cache.
    """

    job: VerificationJob
    status: str
    payload: dict[str, Any] | None = None
    error: str | None = None
    attempts: int = 1
    elapsed: float = 0.0
    cached: bool = False
    fingerprint: str | None = None
    #: Preflight findings (``Diagnostic.to_dict()`` records), attached
    #: when the job ran with ``preflight`` enabled.
    lint: list[dict[str, Any]] | None = None

    @property
    def completed(self) -> bool:
        """True iff a verification ran to completion (either verdict)."""
        return self.status in JobStatus.COMPLETED

    @property
    def partial(self) -> bool:
        """True iff a budget expired and this is a partial result."""
        return self.status == JobStatus.PARTIAL

    @property
    def exhausted_reason(self) -> str | None:
        """Why a partial result stopped early (``None`` otherwise)."""
        if self.status != JobStatus.PARTIAL or not self.payload:
            return None
        return (self.payload.get("partial") or {}).get("reason")

    @property
    def ok(self) -> bool:
        """True iff the specification verified cleanly."""
        return self.status == JobStatus.VERIFIED

    @property
    def verdict(self) -> str:
        """Display verdict for summary tables."""
        return {
            JobStatus.VERIFIED: "VERIFIED",
            JobStatus.VIOLATION: "FAILED",
            JobStatus.LIVENESS_VIOLATION: "NOT-LIVE",
            JobStatus.ERROR: "ERROR",
            JobStatus.TIMEOUT: "TIMEOUT",
            JobStatus.CRASH: "CRASH",
            JobStatus.REJECTED: "REJECTED",
            JobStatus.QUARANTINED: "QUARANTINED",
            JobStatus.PARTIAL: "PARTIAL",
        }[self.status]


def execute_job(
    job: VerificationJob, *, cancel: "_CancelFlag | None" = None
) -> JobResult:
    """Run one job to completion (or budget exhaustion) in this process.

    Never raises: resolution or verification failures are folded into
    an ``error``-status result so one bad specification cannot abort a
    sweep (the parallel runner additionally guards against crashes and
    hangs at the process level).

    The job's budgets run under a :class:`~repro.engine.guard.Guard`,
    so an exhausted budget -- or an external soft-cancel via
    ``cancel``, which is how a timed-out worker is asked to wrap up
    before the SIGKILL deadline -- yields a structured ``partial``
    result carrying the essential-set-so-far and the frontier.  Any
    violations found before exhaustion are definitive, so a partial
    run that found one still reports ``violation``.
    """
    started = clock.monotonic()
    try:
        spec = job.resolve_spec()
        guard = Guard(job.budget(), cancel=cancel)
        report = verify(
            spec,
            augmented=job.augmented,
            pruning=PruningMode(job.pruning),
            validate_spec=job.validate_spec,
            guard=guard,
            backend=job.backend,
            mode=job.mode,
        )
        result = report.result
        if result.violations:
            status = JobStatus.VIOLATION
        elif result.partial:
            status = JobStatus.PARTIAL
        elif result.liveness is not None and result.liveness.violations:
            status = JobStatus.LIVENESS_VIOLATION
        else:
            status = JobStatus.VERIFIED
        return JobResult(
            job,
            status,
            payload=result_to_dict(result),
            error=(
                result.exhausted.describe()
                if result.partial and result.exhausted is not None
                else None
            ),
            elapsed=clock.monotonic() - started,
        )
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return JobResult(
            job,
            JobStatus.ERROR,
            error=f"{type(exc).__name__}: {exc}",
            elapsed=clock.monotonic() - started,
        )
