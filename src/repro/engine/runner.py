"""Job runners: serial in-process execution and a crash-isolated pool.

:class:`SerialRunner` executes jobs one after another in the calling
process -- the zero-dependency fallback, and the fastest option for
small sweeps on small machines.

:class:`ParallelRunner` maintains a pool of persistent worker
processes, each connected to the parent by its own duplex pipe.  Jobs
are dispatched one at a time to idle workers; the parent multiplexes
completions with :func:`multiprocessing.connection.wait` and enforces
a per-job wall-clock timeout in two stages.  First a **soft cancel**:
the worker's shared cancel flag is set, which the job's guard polls
from the hot loop, so a cooperative job wraps up and returns a
*partial* result -- everything verified so far -- within a ``grace``
window.  Only when the grace window also expires is the worker
SIGKILLed and respawned.  A worker that dies mid-job (segfault,
``os._exit``, OOM-kill) is likewise detected through its closed pipe,
so one pathological specification can never take down a sweep.
Timed-out and crashed jobs are retried a bounded number of times
before being reported as ``timeout``/``crash`` results; deterministic
in-job exceptions are *not* retried (they are folded into ``error``
results by :func:`~repro.engine.job.execute_job` inside the worker),
and a partial result delivered during the grace window is terminal --
re-running it against the same budgets would only exhaust them again.

Results are always returned in input order, so serial and parallel
execution of the same job list are interchangeable.  The optional
``on_result`` callback fires the moment each job reaches its terminal
result (in completion order, not input order): the batch orchestrator
uses it to journal and cache incrementally, which is what makes an
interrupted batch resumable.

All timing (deadlines, per-job elapsed, queue wait) goes through
:mod:`repro.obs.clock`, the same clock as the rest of the engine, so
runner timings are directly comparable with journal and profile data.
When a :mod:`repro.obs` collector is active, both runners record one
``engine.job`` span per dispatch attempt plus queue-wait / busy-time
metrics; with no collector the instrumentation reduces to a single
``None`` check.
"""

from __future__ import annotations

import itertools
import multiprocessing
from collections import deque
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Any, Callable, Sequence

from ..obs import active as _active_collector
from ..obs import clock
from .job import JobResult, JobStatus, VerificationJob, execute_job

__all__ = ["SerialRunner", "ParallelRunner", "make_runner"]

#: Signature of the optional event sink (job_retry / job_cancel /
#: job_timeout / job_crash / job_partial notifications, forwarded to
#: the run journal by the batch orchestrator).
EventSink = Callable[[str, dict[str, Any]], None]

#: Signature of the optional per-result sink: called with ``(input
#: index, result)`` the moment a job reaches its terminal result.
ResultSink = Callable[[int, "JobResult"], None]

#: How long the parent blocks waiting for completions before checking
#: deadlines again (seconds).
_TICK = 0.05


class SerialRunner:
    """Execute jobs sequentially in the calling process.

    Per-job timeouts cannot be enforced without process isolation, so
    ``timeout`` is accepted for interface parity but ignored; use
    :class:`ParallelRunner` (even with one worker) when runaway
    specifications are a concern.
    """

    def __init__(
        self, *, timeout: float | None = None, retries: int = 0
    ) -> None:
        self.timeout = timeout
        self.retries = retries

    def run(
        self,
        jobs: Sequence[VerificationJob],
        on_event: EventSink | None = None,
        on_result: ResultSink | None = None,
    ) -> list[JobResult]:
        """Run every job; results are in input order."""
        coll = _active_collector()
        run_started = clock.monotonic()
        if coll is not None:
            coll.gauge("engine.workers", 1)
        results = []
        for index, job in enumerate(jobs):
            started = clock.monotonic()
            if coll is not None:
                coll.observe("engine.queue.wait", started - run_started)
            result = execute_job(job)
            ended = clock.monotonic()
            if coll is not None:
                coll.add_span(
                    "engine.job",
                    started,
                    ended=ended,
                    job=job.label,
                    status=result.status,
                )
                coll.observe("engine.job.elapsed", ended - started)
                coll.count("engine.worker.busy_seconds", ended - started)
            if result.partial and on_event is not None:
                on_event(
                    "job_partial",
                    {
                        "job": job.label,
                        "reason": result.exhausted_reason,
                        "attempt": 1,
                    },
                )
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


def _worker_main(conn: Connection, cancel: Any = None) -> None:
    """Worker loop: receive ``(token, job)``, send ``(token, result)``.

    ``cancel`` is the slot's shared soft-cancel event: cleared before
    each job (it may still be set from a previous grace window) and
    handed to the job's guard, which polls it from the hot loop.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            conn.close()
            return
        token, job = task
        if cancel is not None:
            cancel.clear()
        result = execute_job(job, cancel=cancel)
        try:
            conn.send((token, result))
        except (BrokenPipeError, OSError):
            return


class _Slot:
    """One worker process and its dispatch state."""

    __slots__ = (
        "proc",
        "conn",
        "cancel",
        "token",
        "index",
        "attempt",
        "started",
        "cancelled_at",
    )

    def __init__(
        self,
        proc: multiprocessing.process.BaseProcess,
        conn: Connection,
        cancel: Any = None,
    ):
        self.proc = proc
        self.conn = conn
        self.cancel = cancel
        self.token: int | None = None  # None <=> idle
        self.index = -1
        self.attempt = 0
        self.started = 0.0
        #: When the soft-cancel was requested (``None`` <=> not yet).
        self.cancelled_at: float | None = None


class ParallelRunner:
    """Crash-isolated multiprocessing worker pool with per-job timeouts."""

    def __init__(
        self,
        *,
        workers: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
        grace: float = 1.0,
        start_method: str | None = None,
    ) -> None:
        import os

        self.workers = max(1, int(workers or (os.cpu_count() or 1)))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        #: Soft-cancel grace window (seconds): how long a timed-out
        #: worker gets to emit its partial result before SIGKILL.
        self.grace = max(0.0, float(grace))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    def _spawn(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cancel = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, cancel), daemon=True
        )
        proc.start()
        child_conn.close()  # the parent keeps only its end
        return _Slot(proc, parent_conn, cancel)

    def _retire(self, slot: _Slot) -> None:
        """Forcefully tear down a worker (timeout or crash path)."""
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc.is_alive():
            slot.proc.terminate()
        slot.proc.join(1.0)
        if slot.proc.is_alive():  # pragma: no cover - stubborn process
            slot.proc.kill()
            slot.proc.join(1.0)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[VerificationJob],
        on_event: EventSink | None = None,
        on_result: ResultSink | None = None,
    ) -> list[JobResult]:
        """Run every job across the pool; results are in input order."""
        jobs = list(jobs)
        if not jobs:
            return []

        coll = _active_collector()
        run_started = clock.monotonic()
        if coll is not None:
            coll.gauge("engine.workers", self.workers)

        def emit(event: str, **fields: Any) -> None:
            if on_event is not None:
                on_event(event, fields)

        def record_job(slot: _Slot, status: str) -> None:
            """Observability record for one finished dispatch attempt."""
            if coll is None:
                return
            ended = clock.monotonic()
            coll.add_span(
                "engine.job",
                slot.started,
                ended=ended,
                job=jobs[slot.index].label,
                attempt=slot.attempt,
                status=status,
            )
            coll.observe("engine.job.elapsed", ended - slot.started)
            coll.count("engine.worker.busy_seconds", ended - slot.started)

        results: list[JobResult | None] = [None] * len(jobs)
        pending: deque[tuple[int, int]] = deque(
            (i, 1) for i in range(len(jobs))
        )  # (job index, attempt number)
        tokens = itertools.count()
        slots = [self._spawn() for _ in range(min(self.workers, len(jobs)))]

        def finalize(index: int, result: JobResult) -> None:
            """Record a terminal result and notify the result sink."""
            results[index] = result
            if on_result is not None:
                on_result(index, result)

        def fail_or_retry(slot: _Slot, status: str, error: str) -> None:
            """Requeue the job or finalize it after a timeout/crash."""
            reason = "timeout" if status == JobStatus.TIMEOUT else "crash"
            record_job(slot, status)
            if slot.attempt <= self.retries:
                emit(
                    "job_retry",
                    job=jobs[slot.index].label,
                    attempt=slot.attempt,
                    reason=reason,
                )
                pending.append((slot.index, slot.attempt + 1))
            else:
                finalize(
                    slot.index,
                    JobResult(
                        jobs[slot.index],
                        status,
                        error=error,
                        attempts=slot.attempt,
                        elapsed=clock.monotonic() - slot.started,
                    ),
                )
            self._retire(slot)
            slots[slots.index(slot)] = self._spawn()

        try:
            while pending or any(s.token is not None for s in slots):
                for slot in list(slots):
                    if slot.token is None and pending:
                        index, attempt = pending.popleft()
                        slot.token = next(tokens)
                        slot.index = index
                        slot.attempt = attempt
                        slot.started = clock.monotonic()
                        if coll is not None:
                            coll.observe(
                                "engine.queue.wait", slot.started - run_started
                            )
                        try:
                            slot.conn.send((slot.token, jobs[index]))
                        except (BrokenPipeError, OSError):
                            # The worker died between jobs; replace it and
                            # put the task back without burning an attempt.
                            pending.appendleft((index, attempt))
                            slot.token = None
                            self._retire(slot)
                            slots[slots.index(slot)] = self._spawn()

                busy = [s for s in slots if s.token is not None]
                for conn in _connection_wait(
                    [s.conn for s in busy], timeout=_TICK
                ):
                    slot = next(s for s in busy if s.conn is conn)
                    try:
                        token, result = conn.recv()
                    except (EOFError, OSError):
                        exitcode = slot.proc.exitcode
                        emit(
                            "job_crash",
                            job=jobs[slot.index].label,
                            attempt=slot.attempt,
                            exitcode=exitcode,
                        )
                        fail_or_retry(
                            slot,
                            JobStatus.CRASH,
                            f"worker died (exit code {exitcode})",
                        )
                        continue
                    if token != slot.token:  # pragma: no cover - stale echo
                        continue
                    record_job(slot, result.status)
                    result.attempts = slot.attempt
                    if result.partial:
                        # Terminal, whether the budget was the job's own
                        # or the soft-cancel: retrying against the same
                        # budgets would only exhaust them again.
                        emit(
                            "job_partial",
                            job=jobs[slot.index].label,
                            reason=result.exhausted_reason,
                            attempt=slot.attempt,
                        )
                    finalize(slot.index, result)
                    slot.token = None
                    slot.cancelled_at = None

                if self.timeout is not None:
                    now = clock.monotonic()
                    for slot in list(slots):
                        if slot.token is None:
                            continue
                        if (
                            slot.cancelled_at is None
                            and now - slot.started > self.timeout
                        ):
                            # Stage one: ask nicely.  The worker's guard
                            # polls the cancel flag and, if the job
                            # cooperates, sends back a partial result
                            # within the grace window.
                            slot.cancel.set()
                            slot.cancelled_at = now
                            emit(
                                "job_cancel",
                                job=jobs[slot.index].label,
                                attempt=slot.attempt,
                                timeout=self.timeout,
                                grace=self.grace,
                            )
                        elif (
                            slot.cancelled_at is not None
                            and now - slot.cancelled_at > self.grace
                        ):
                            # Stage two: the job ignored the soft-cancel
                            # (hung in native code, spinning in react());
                            # SIGKILL the worker and retry or report.
                            emit(
                                "job_timeout",
                                job=jobs[slot.index].label,
                                attempt=slot.attempt,
                                timeout=self.timeout,
                            )
                            fail_or_retry(
                                slot,
                                JobStatus.TIMEOUT,
                                f"exceeded {self.timeout:g}s wall-clock budget",
                            )
        finally:
            for slot in slots:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                slot.proc.join(0.5)
                self._retire(slot)

        assert all(r is not None for r in results)
        return [r for r in results if r is not None]


def make_runner(
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    grace: float | None = None,
) -> SerialRunner | ParallelRunner:
    """The right runner for the requested parallelism.

    One worker and no timeout stays in-process (serial fallback); more
    workers -- or any timeout, which needs process isolation to be
    enforceable -- builds a :class:`ParallelRunner`.  ``grace`` is the
    soft-cancel window granted to timed-out workers (parallel only).
    """
    if workers <= 1 and timeout is None:
        return SerialRunner(retries=retries)
    if grace is None:
        return ParallelRunner(workers=workers, timeout=timeout, retries=retries)
    return ParallelRunner(
        workers=workers, timeout=timeout, retries=retries, grace=grace
    )
