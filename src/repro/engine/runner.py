"""Job runners: serial in-process execution and a crash-isolated pool.

:class:`SerialRunner` executes jobs one after another in the calling
process -- the zero-dependency fallback, and the fastest option for
small sweeps on small machines.

:class:`ParallelRunner` maintains a pool of persistent worker
processes, each connected to the parent by its own duplex pipe.  Jobs
are dispatched one at a time to idle workers; the parent multiplexes
completions with :func:`multiprocessing.connection.wait` and enforces
a per-job wall-clock timeout in two stages.  First a **soft cancel**:
the worker's shared cancel flag is set, which the job's guard polls
from the hot loop, so a cooperative job wraps up and returns a
*partial* result -- everything verified so far -- within a ``grace``
window.  Only when the grace window also expires is the worker
SIGKILLed and respawned.  A worker that dies mid-job (segfault,
``os._exit``, OOM-kill) is likewise detected through its closed pipe,
so one pathological specification can never take down a sweep.
Timed-out and crashed jobs are retried a bounded number of times
before being reported as ``timeout``/``crash`` results; deterministic
in-job exceptions are *not* retried (they are folded into ``error``
results by :func:`~repro.engine.job.execute_job` inside the worker),
and a partial result delivered during the grace window is terminal --
re-running it against the same budgets would only exhaust them again.

Retries are *supervised* (see :mod:`repro.engine.resilience`): an
optional :class:`~repro.engine.resilience.BackoffPolicy` delays each
retry with deterministic seeded jitter instead of redispatching
immediately (the ``job_retry`` event records the ``delay``), and an
optional :class:`~repro.engine.resilience.CircuitBreaker` -- keyed by
the per-job ``keys`` the batch orchestrator supplies, i.e. spec
fingerprints -- quarantines specs that keep crashing or hanging:
once the breaker trips, the job is finalized with a structured
``quarantined`` result (``breaker_open`` event) instead of burning
further worker respawns.

Both runners also accept an external ``cancel`` flag for graceful
drain: when it is set, no further jobs are dispatched, every in-flight
job is soft-cancelled through the same Guard path as a timeout (its
partial result is journaled; jobs that ignore the soft-cancel are
SIGKILLed after the grace window and left unfinished), and the runner
raises :class:`~repro.engine.resilience.BatchCancelled` so the batch
orchestrator can flush a resumable ``run_aborted`` journal.

Results are always returned in input order, so serial and parallel
execution of the same job list are interchangeable.  The optional
``on_result`` callback fires the moment each job reaches its terminal
result (in completion order, not input order): the batch orchestrator
uses it to journal and cache incrementally, which is what makes an
interrupted batch resumable.

All timing (deadlines, per-job elapsed, queue wait) goes through
:mod:`repro.obs.clock`, the same clock as the rest of the engine, so
runner timings are directly comparable with journal and profile data.
When a :mod:`repro.obs` collector is active, both runners record one
``engine.job`` span per dispatch attempt plus queue-wait / busy-time
metrics; with no collector the instrumentation reduces to a single
``None`` check.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from collections import deque
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Any, Callable, Sequence

from ..obs import active as _active_collector
from ..obs import clock
from .job import JobResult, JobStatus, VerificationJob, execute_job
from .resilience import BackoffPolicy, BatchCancelled, BreakerState, CircuitBreaker

__all__ = ["SerialRunner", "ParallelRunner", "make_runner"]

#: Minimal duck type for the external drain flag: anything with
#: ``is_set()`` works (``threading.Event``, ``multiprocessing.Event``).
CancelFlag = Any

#: Signature of the optional event sink (job_retry / job_cancel /
#: job_timeout / job_crash / job_partial notifications, forwarded to
#: the run journal by the batch orchestrator).
EventSink = Callable[[str, dict[str, Any]], None]

#: Signature of the optional per-result sink: called with ``(input
#: index, result)`` the moment a job reaches its terminal result.
ResultSink = Callable[[int, "JobResult"], None]

#: How long the parent blocks waiting for completions before checking
#: deadlines again (seconds).
_TICK = 0.05


class SerialRunner:
    """Execute jobs sequentially in the calling process.

    Per-job timeouts cannot be enforced without process isolation, so
    ``timeout`` is accepted for interface parity but ignored; use
    :class:`ParallelRunner` (even with one worker) when runaway
    specifications are a concern.
    """

    def __init__(
        self, *, timeout: float | None = None, retries: int = 0
    ) -> None:
        self.timeout = timeout
        self.retries = retries

    def run(
        self,
        jobs: Sequence[VerificationJob],
        on_event: EventSink | None = None,
        on_result: ResultSink | None = None,
        *,
        keys: Sequence[str] | None = None,
        cancel: CancelFlag | None = None,
    ) -> list[JobResult]:
        """Run every job; results are in input order.

        ``keys`` is accepted for interface parity with
        :class:`ParallelRunner` but unused: breaker supervision guards
        against crashes and hangs, which need process isolation to
        survive in the first place (in-process failures are already
        folded into deterministic ``error`` results).  ``cancel`` is
        the graceful-drain flag: when another thread sets it, the job
        in flight wraps up with a partial result through its guard and
        :class:`~repro.engine.resilience.BatchCancelled` is raised
        before the next dispatch.
        """
        del keys
        coll = _active_collector()
        run_started = clock.monotonic()
        if coll is not None:
            coll.gauge("engine.workers", 1)
        results = []
        for index, job in enumerate(jobs):
            if cancel is not None and cancel.is_set():
                raise BatchCancelled(finished=len(results))
            started = clock.monotonic()
            if coll is not None:
                coll.observe("engine.queue.wait", started - run_started)
            result = execute_job(job, cancel=cancel)
            ended = clock.monotonic()
            if coll is not None:
                coll.add_span(
                    "engine.job",
                    started,
                    ended=ended,
                    job=job.label,
                    status=result.status,
                )
                coll.observe("engine.job.elapsed", ended - started)
                coll.count("engine.worker.busy_seconds", ended - started)
            if result.partial and on_event is not None:
                on_event(
                    "job_partial",
                    {
                        "job": job.label,
                        "reason": result.exhausted_reason,
                        "attempt": 1,
                    },
                )
            results.append(result)
            if on_result is not None:
                on_result(index, result)
            if (
                cancel is not None
                and cancel.is_set()
                and result.partial
                and result.exhausted_reason == "cancelled"
            ):
                # The drain flag cut this job short; its partial is
                # journaled (so nothing is lost) but never cached, so a
                # resumed run re-verifies it with full budgets.
                raise BatchCancelled(finished=len(results) - 1)
        return results


def _worker_main(conn: Connection, cancel: Any = None) -> None:
    """Worker loop: receive ``(token, job)``, send ``(token, result)``.

    ``cancel`` is the slot's shared soft-cancel event: cleared before
    each job (it may still be set from a previous grace window) and
    handed to the job's guard, which polls it from the hot loop.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            conn.close()
            return
        token, job = task
        if cancel is not None:
            cancel.clear()
        result = execute_job(job, cancel=cancel)
        try:
            conn.send((token, result))
        except (BrokenPipeError, OSError):
            return


class _Slot:
    """One worker process and its dispatch state."""

    __slots__ = (
        "proc",
        "conn",
        "cancel",
        "token",
        "index",
        "attempt",
        "started",
        "cancelled_at",
    )

    def __init__(
        self,
        proc: multiprocessing.process.BaseProcess,
        conn: Connection,
        cancel: Any = None,
    ):
        self.proc = proc
        self.conn = conn
        self.cancel = cancel
        self.token: int | None = None  # None <=> idle
        self.index = -1
        self.attempt = 0
        self.started = 0.0
        #: When the soft-cancel was requested (``None`` <=> not yet).
        self.cancelled_at: float | None = None


class ParallelRunner:
    """Crash-isolated multiprocessing worker pool with per-job timeouts."""

    def __init__(
        self,
        *,
        workers: int | None = None,
        timeout: float | None = None,
        retries: int = 1,
        grace: float = 1.0,
        start_method: str | None = None,
        backoff: BackoffPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        import os

        self.workers = max(1, int(workers or (os.cpu_count() or 1)))
        self.timeout = timeout
        self.retries = max(0, int(retries))
        #: Soft-cancel grace window (seconds): how long a timed-out
        #: worker gets to emit its partial result before SIGKILL.
        self.grace = max(0.0, float(grace))
        #: Retry backoff policy (``None`` retries immediately, the
        #: pre-supervision behavior).
        self.backoff = backoff
        #: Per-key circuit breaker (``None`` disables quarantining).
        #: Shared across runs when the caller keeps the runner around.
        self.breaker = breaker
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------
    def _spawn(self) -> _Slot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cancel = self._ctx.Event()
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn, cancel), daemon=True
        )
        proc.start()
        child_conn.close()  # the parent keeps only its end
        return _Slot(proc, parent_conn, cancel)

    def _retire(self, slot: _Slot) -> None:
        """Forcefully tear down a worker (timeout or crash path)."""
        try:
            slot.conn.close()
        except OSError:
            pass
        if slot.proc.is_alive():
            slot.proc.terminate()
        slot.proc.join(1.0)
        if slot.proc.is_alive():  # pragma: no cover - stubborn process
            slot.proc.kill()
            slot.proc.join(1.0)

    # ------------------------------------------------------------------
    def run(
        self,
        jobs: Sequence[VerificationJob],
        on_event: EventSink | None = None,
        on_result: ResultSink | None = None,
        *,
        keys: Sequence[str] | None = None,
        cancel: CancelFlag | None = None,
    ) -> list[JobResult]:
        """Run every job across the pool; results are in input order.

        ``keys`` aligns with ``jobs`` and names each job for breaker
        supervision and backoff jitter (the batch orchestrator passes
        spec fingerprints; job labels are the fallback).  ``cancel`` is
        the graceful-drain flag: once set, dispatch stops, in-flight
        jobs are soft-cancelled (partials journaled, hung workers
        SIGKILLed after the grace window and left unfinished) and
        :class:`~repro.engine.resilience.BatchCancelled` is raised.
        """
        jobs = list(jobs)
        if keys is not None and len(keys) != len(jobs):
            raise ValueError(
                f"keys length {len(keys)} does not match {len(jobs)} jobs"
            )
        if not jobs:
            return []

        coll = _active_collector()
        run_started = clock.monotonic()
        if coll is not None:
            coll.gauge("engine.workers", self.workers)

        def emit(event: str, **fields: Any) -> None:
            if on_event is not None:
                on_event(event, fields)

        def record_job(slot: _Slot, status: str) -> None:
            """Observability record for one finished dispatch attempt."""
            if coll is None:
                return
            ended = clock.monotonic()
            coll.add_span(
                "engine.job",
                slot.started,
                ended=ended,
                job=jobs[slot.index].label,
                attempt=slot.attempt,
                status=status,
            )
            coll.observe("engine.job.elapsed", ended - slot.started)
            coll.count("engine.worker.busy_seconds", ended - slot.started)

        results: list[JobResult | None] = [None] * len(jobs)
        pending: deque[tuple[int, int]] = deque(
            (i, 1) for i in range(len(jobs))
        )  # (job index, attempt number)
        #: Retries waiting out their backoff: (ready at, index, attempt).
        delayed: list[tuple[float, int, int]] = []
        draining = False
        tokens = itertools.count()
        slots = [self._spawn() for _ in range(min(self.workers, len(jobs)))]

        def key_for(index: int) -> str:
            return keys[index] if keys is not None else jobs[index].label

        def finalize(index: int, result: JobResult) -> None:
            """Record a terminal result and notify the result sink."""
            results[index] = result
            if on_result is not None:
                on_result(index, result)

        def fail_or_retry(slot: _Slot, status: str, error: str) -> None:
            """Requeue, quarantine or finalize a job after timeout/crash."""
            reason = "timeout" if status == JobStatus.TIMEOUT else "crash"
            record_job(slot, status)
            index, attempt = slot.index, slot.attempt
            key = key_for(index)
            transition = None
            if self.breaker is not None:
                transition = self.breaker.record_failure(key)
            if draining:
                # Leave the job unfinished: the drain ends with
                # BatchCancelled, so a resumed run re-dispatches it.
                pass
            elif (
                self.breaker is not None
                and self.breaker.state(key) == BreakerState.OPEN
            ):
                emit(
                    "breaker_open",
                    job=jobs[index].label,
                    key=key,
                    reason=reason,
                    transition=transition or "open",
                    cooldown=self.breaker.cooldown,
                )
                finalize(
                    index,
                    JobResult(
                        jobs[index],
                        JobStatus.QUARANTINED,
                        error=(
                            f"circuit breaker opened after repeated {reason} "
                            f"(last: {error})"
                        ),
                        attempts=attempt,
                        elapsed=clock.monotonic() - slot.started,
                    ),
                )
            elif attempt <= self.retries:
                delay = 0.0
                if self.backoff is not None:
                    delay = self.backoff.delay(key, attempt + 1)
                    if coll is not None:
                        coll.observe("engine.retry.backoff", delay)
                emit(
                    "job_retry",
                    job=jobs[index].label,
                    attempt=attempt,
                    reason=reason,
                    delay=round(delay, 6),
                )
                if delay > 0:
                    delayed.append((clock.monotonic() + delay, index, attempt + 1))
                else:
                    pending.append((index, attempt + 1))
            else:
                finalize(
                    index,
                    JobResult(
                        jobs[index],
                        status,
                        error=error,
                        attempts=attempt,
                        elapsed=clock.monotonic() - slot.started,
                    ),
                )
            self._retire(slot)
            if draining:
                slots.remove(slot)
            else:
                slots[slots.index(slot)] = self._spawn()

        try:
            while pending or delayed or any(s.token is not None for s in slots):
                if cancel is not None and not draining and cancel.is_set():
                    # Graceful drain: stop dispatching, ask every
                    # in-flight job to wrap up through the same
                    # soft-cancel path as a timeout.
                    draining = True
                    pending.clear()
                    delayed.clear()
                    now = clock.monotonic()
                    for slot in slots:
                        if slot.token is not None and slot.cancelled_at is None:
                            slot.cancel.set()
                            slot.cancelled_at = now
                            emit(
                                "job_cancel",
                                job=jobs[slot.index].label,
                                attempt=slot.attempt,
                                reason="drain",
                                grace=self.grace,
                            )

                if delayed:
                    # Promote retries whose backoff has elapsed.
                    now = clock.monotonic()
                    due = sorted(d for d in delayed if d[0] <= now)
                    if due:
                        delayed = [d for d in delayed if d[0] > now]
                        pending.extend((i, a) for _, i, a in due)

                for slot in list(slots):
                    while slot.token is None and pending:
                        index, attempt = pending.popleft()
                        key = key_for(index)
                        if self.breaker is not None and not self.breaker.allow(
                            key
                        ):
                            # The breaker tripped while this job (or its
                            # retry) sat in the queue; quarantine it
                            # without burning a worker.
                            emit(
                                "breaker_open",
                                job=jobs[index].label,
                                key=key,
                                reason="open",
                                transition="open",
                                cooldown=self.breaker.cooldown,
                            )
                            finalize(
                                index,
                                JobResult(
                                    jobs[index],
                                    JobStatus.QUARANTINED,
                                    error=(
                                        "circuit breaker open for this spec "
                                        "fingerprint"
                                    ),
                                    attempts=max(0, attempt - 1),
                                ),
                            )
                            continue
                        slot.token = next(tokens)
                        slot.index = index
                        slot.attempt = attempt
                        slot.started = clock.monotonic()
                        if coll is not None:
                            coll.observe(
                                "engine.queue.wait", slot.started - run_started
                            )
                        try:
                            slot.conn.send((slot.token, jobs[index]))
                        except (BrokenPipeError, OSError):
                            # The worker died between jobs; replace it and
                            # put the task back without burning an attempt.
                            pending.appendleft((index, attempt))
                            slot.token = None
                            self._retire(slot)
                            slots[slots.index(slot)] = self._spawn()
                        break

                busy = [s for s in slots if s.token is not None]
                if not busy:
                    if delayed:
                        # Nothing in flight; sleep until the next retry
                        # is due (bounded by the usual tick).
                        next_due = min(d[0] for d in delayed)
                        time.sleep(
                            max(0.0, min(_TICK, next_due - clock.monotonic()))
                        )
                    continue
                for conn in _connection_wait(
                    [s.conn for s in busy], timeout=_TICK
                ):
                    slot = next(s for s in busy if s.conn is conn)
                    try:
                        token, result = conn.recv()
                    except (EOFError, OSError):
                        exitcode = slot.proc.exitcode
                        emit(
                            "job_crash",
                            job=jobs[slot.index].label,
                            attempt=slot.attempt,
                            exitcode=exitcode,
                        )
                        fail_or_retry(
                            slot,
                            JobStatus.CRASH,
                            f"worker died (exit code {exitcode})",
                        )
                        continue
                    if token != slot.token:  # pragma: no cover - stale echo
                        continue
                    record_job(slot, result.status)
                    if self.breaker is not None:
                        # Any delivered result -- even an in-job error --
                        # means the worker survived; only crashes and
                        # hangs count against the breaker.
                        self.breaker.record_success(key_for(slot.index))
                    result.attempts = slot.attempt
                    if result.partial:
                        # Terminal, whether the budget was the job's own
                        # or the soft-cancel: retrying against the same
                        # budgets would only exhaust them again.
                        emit(
                            "job_partial",
                            job=jobs[slot.index].label,
                            reason=result.exhausted_reason,
                            attempt=slot.attempt,
                        )
                    finalize(slot.index, result)
                    slot.token = None
                    slot.cancelled_at = None

                now = clock.monotonic()
                for slot in list(slots):
                    if slot.token is None:
                        continue
                    if (
                        self.timeout is not None
                        and slot.cancelled_at is None
                        and now - slot.started > self.timeout
                    ):
                        # Stage one: ask nicely.  The worker's guard
                        # polls the cancel flag and, if the job
                        # cooperates, sends back a partial result
                        # within the grace window.
                        slot.cancel.set()
                        slot.cancelled_at = now
                        emit(
                            "job_cancel",
                            job=jobs[slot.index].label,
                            attempt=slot.attempt,
                            timeout=self.timeout,
                            grace=self.grace,
                        )
                    elif (
                        slot.cancelled_at is not None
                        and now - slot.cancelled_at > self.grace
                    ):
                        # Stage two: the job ignored the soft-cancel
                        # (hung in native code, spinning in react());
                        # SIGKILL the worker and retry or report.  The
                        # same window bounds a drain, which is how the
                        # drain deadline stays `grace` even for jobs
                        # with no per-job timeout.
                        emit(
                            "job_timeout",
                            job=jobs[slot.index].label,
                            attempt=slot.attempt,
                            timeout=self.timeout,
                        )
                        fail_or_retry(
                            slot,
                            JobStatus.TIMEOUT,
                            (
                                f"exceeded {self.timeout:g}s wall-clock budget"
                                if self.timeout is not None
                                else "ignored the drain soft-cancel"
                            ),
                        )
        finally:
            for slot in slots:
                try:
                    slot.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
                slot.proc.join(0.5)
                self._retire(slot)

        if draining:
            raise BatchCancelled(
                finished=sum(1 for r in results if r is not None)
            )
        assert all(r is not None for r in results)
        return [r for r in results if r is not None]


def make_runner(
    *,
    workers: int = 1,
    timeout: float | None = None,
    retries: int = 1,
    grace: float | None = None,
    backoff: BackoffPolicy | None = None,
    breaker: CircuitBreaker | None = None,
) -> SerialRunner | ParallelRunner:
    """The right runner for the requested parallelism.

    One worker and no timeout stays in-process (serial fallback); more
    workers -- or any timeout, which needs process isolation to be
    enforceable -- builds a :class:`ParallelRunner`.  ``grace`` is the
    soft-cancel window granted to timed-out workers, ``backoff`` /
    ``breaker`` the retry-supervision policies (all parallel only:
    crashes and hangs cannot survive without process isolation, so the
    serial runner has nothing to back off from or quarantine).
    """
    if workers <= 1 and timeout is None:
        return SerialRunner(retries=retries)
    kwargs: dict[str, Any] = {
        "workers": workers,
        "timeout": timeout,
        "retries": retries,
        "backoff": backoff,
        "breaker": breaker,
    }
    if grace is not None:
        kwargs["grace"] = grace
    return ParallelRunner(**kwargs)
