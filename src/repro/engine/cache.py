"""Persistent, content-addressed verification result cache.

Layout (one JSON file per entry, sharded by key prefix)::

    <root>/v<ENGINE_VERSION>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.engine.fingerprint.job_key` -- a hash of
the spec fingerprint, the verification options and the engine version.
Re-running a zoo or mutant sweep therefore only verifies specs whose
*behaviour* changed; renames, reorderings and unrelated refactors all
hit the cache.

Entries are written atomically (temp file + ``os.replace``) so a
killed run never leaves a torn entry; a *corrupt* entry (unparsable
JSON or the wrong shape) is quarantined -- moved aside to
``<key>.json.quarantined`` for post-mortem -- and treated as a miss,
so one flipped bit can never wedge a sweep or be replayed as a
verdict.  The default root is ``$REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.

Partial results (budget-exhausted runs) are cached too, flagged with
``"partial": true``; since the budgets are part of the job key, a
partial entry is only replayed for a job requesting the same budgets,
and it replays as *partial* -- never as a verified verdict.  Partials
whose exhaustion reason is ``cancelled`` are **not** cached: the
cancellation came from the runner's wall-clock timeout, which is not
part of the key, so caching them would poison unrelated runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..obs import active as _active_collector
from .fingerprint import ENGINE_VERSION, job_key
from .job import JobResult, JobStatus, VerificationJob

__all__ = ["default_cache_dir", "ResultCache"]


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path("~/.cache").expanduser()
    return base / "repro"


class ResultCache:
    """Content-addressed store of completed verification results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    # ------------------------------------------------------------------
    def key_for(self, fingerprint: str, job: VerificationJob) -> str:
        """The content address of *job*'s result."""
        return job_key(fingerprint, job)

    def _path(self, key: str) -> Path:
        return self.root / f"v{ENGINE_VERSION}" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, fingerprint: str, job: VerificationJob) -> JobResult | None:
        """Replay *job*'s result from the cache, or ``None`` on a miss.

        A missing entry is a plain miss.  A *corrupt* entry -- torn
        JSON, a non-dict payload, an unknown status, or a partial
        record without its ``partial`` marker -- is quarantined (moved
        aside to ``<key>.json.quarantined``) and then counts as a
        miss, so the fresh result can land cleanly.
        """
        key = self.key_for(fingerprint, job)
        path = self._path(key)
        coll = _active_collector()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            if coll is not None:
                coll.count("engine.cache.misses")
            return None
        try:
            record = json.loads(text)
            status = record["status"]
            payload = record["payload"]
            if status not in JobStatus.WITH_PAYLOAD or not isinstance(payload, dict):
                raise ValueError("malformed cache entry")
            if (status == JobStatus.PARTIAL) != bool(record.get("partial")):
                raise ValueError("partial marker does not match status")
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            if coll is not None:
                coll.count("engine.cache.misses")
            return None
        self.hits += 1
        if coll is not None:
            coll.count("engine.cache.hits")
        return JobResult(
            job,
            status,
            payload=payload,
            error=record.get("error"),
            elapsed=float(record.get("elapsed", 0.0)),
            cached=True,
            fingerprint=fingerprint,
        )

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside for post-mortem inspection."""
        try:
            os.replace(path, path.with_name(path.name + ".quarantined"))
        except OSError:
            return
        self.quarantined += 1
        coll = _active_collector()
        if coll is not None:
            coll.count("engine.cache.quarantined")

    def put(self, fingerprint: str, job: VerificationJob, result: JobResult) -> None:
        """Store a completed or partial result.

        No-op for errors/timeouts/crashes, and for partials whose
        exhaustion reason is ``cancelled`` -- those stopped because of
        the runner's per-job timeout, which is not part of the job
        key, so caching them would poison runs with other timeouts.
        """
        if result.status not in JobStatus.WITH_PAYLOAD or result.payload is None:
            return
        if result.partial and result.exhausted_reason == "cancelled":
            return
        key = self.key_for(fingerprint, job)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record: dict[str, Any] = {
            "key": key,
            "engine": ENGINE_VERSION,
            "fingerprint": fingerprint,
            "job": job.to_meta(),
            "status": result.status,
            "elapsed": result.elapsed,
            "payload": result.payload,
        }
        if result.partial:
            record["partial"] = True
            record["error"] = result.error
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
