"""Persistent, content-addressed verification result cache.

Layout (one JSON file per entry, sharded by key prefix)::

    <root>/v<ENGINE_VERSION>/<key[:2]>/<key>.json

where ``key`` is :func:`repro.engine.fingerprint.job_key` -- a hash of
the spec fingerprint, the verification options and the engine version.
Re-running a zoo or mutant sweep therefore only verifies specs whose
*behaviour* changed; renames, reorderings and unrelated refactors all
hit the cache.

Entries are written atomically (temp file + ``os.replace``) so a
killed run never leaves a torn entry; unreadable or mismatched entries
are treated as misses and rewritten.  The default root is
``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME/repro``, else
``~/.cache/repro``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..obs import active as _active_collector
from .fingerprint import ENGINE_VERSION, job_key
from .job import JobResult, JobStatus, VerificationJob

__all__ = ["default_cache_dir", "ResultCache"]


def default_cache_dir() -> Path:
    """The cache root used when none is given explicitly."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path("~/.cache").expanduser()
    return base / "repro"


class ResultCache:
    """Content-addressed store of completed verification results."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root).expanduser() if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, fingerprint: str, job: VerificationJob) -> str:
        """The content address of *job*'s result."""
        return job_key(fingerprint, job)

    def _path(self, key: str) -> Path:
        return self.root / f"v{ENGINE_VERSION}" / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, fingerprint: str, job: VerificationJob) -> JobResult | None:
        """Replay *job*'s result from the cache, or ``None`` on a miss.

        A corrupted or shape-mismatched entry counts as a miss (it will
        be overwritten by the fresh result).
        """
        key = self.key_for(fingerprint, job)
        path = self._path(key)
        coll = _active_collector()
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            status = record["status"]
            payload = record["payload"]
            if status not in JobStatus.COMPLETED or not isinstance(payload, dict):
                raise ValueError("malformed cache entry")
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            if coll is not None:
                coll.count("engine.cache.misses")
            return None
        self.hits += 1
        if coll is not None:
            coll.count("engine.cache.hits")
        return JobResult(
            job,
            status,
            payload=payload,
            elapsed=float(record.get("elapsed", 0.0)),
            cached=True,
            fingerprint=fingerprint,
        )

    def put(self, fingerprint: str, job: VerificationJob, result: JobResult) -> None:
        """Store a completed result (no-op for errors/timeouts/crashes)."""
        if not result.completed or result.payload is None:
            return
        key = self.key_for(fingerprint, job)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record: dict[str, Any] = {
            "key": key,
            "engine": ENGINE_VERSION,
            "fingerprint": fingerprint,
            "job": job.to_meta(),
            "status": result.status,
            "elapsed": result.elapsed,
            "payload": result.payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
