"""Supervised-retry policies: backoff, circuit breaking, drain cancel.

PR 4 made single failures survivable (crash isolation, bounded
retries, soft-cancel); this module makes *repeated* failure cheap and
*systemic* shutdown clean, which is what separates a batch tool from a
long-running service:

* :class:`BackoffPolicy` -- exponential backoff with **deterministic
  seeded jitter** for retry scheduling.  Immediate retries turn one
  pathological spec into a fork bomb (crash, respawn, crash...); jitter
  keeps a fleet of retries from synchronizing.  Determinism matters
  here the same way it does in :mod:`repro.engine.faults`: a chaos test
  must observe the same delays twice, so the jitter is a pure function
  of ``(seed, key, attempt)``, never of global randomness.

* :class:`CircuitBreaker` -- per-spec-fingerprint supervision.  A spec
  that keeps crashing or hanging its workers is *quarantined*: the
  breaker trips open after ``threshold`` consecutive failures, further
  admissions of that fingerprint are refused with a structured
  terminal result (``JobStatus.QUARANTINED``) instead of burning
  worker respawns, and after ``cooldown`` seconds the breaker
  half-opens to let exactly one probe back through -- success closes
  it, failure re-opens it.  Keying on the *behavioral fingerprint*
  (not the label) means a spec quarantined under one name stays
  quarantined under every alias, across campaigns sharing the breaker.

* :class:`BatchCancelled` -- the structured "stop now, keep
  everything" signal used by graceful drain: a runner that observes an
  external cancel flag soft-cancels its in-flight jobs through the
  existing Guard path, stops dispatching, and raises this instead of
  returning, so :func:`~repro.engine.batch.run_batch` can flush a
  resumable ``run_aborted`` journal exactly as it does for SIGINT.

All timing goes through :mod:`repro.obs.clock` (injectable for
deterministic tests); breaker transitions are metered under
``engine.breaker.*`` and backoff delays under ``engine.retry.backoff``
(see the :data:`repro.obs.metrics.CATALOG`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable

from ..obs import active as _active_collector
from ..obs import clock

__all__ = [
    "BackoffPolicy",
    "BatchCancelled",
    "BreakerState",
    "CircuitBreaker",
]


class BatchCancelled(Exception):
    """A run was stopped by an external cancel flag (graceful drain).

    Raised by the runners once every in-flight job has been
    soft-cancelled and collected; ``finished`` says how many jobs
    reached a terminal result before the drain.  The batch
    orchestrator turns it into a ``run_aborted`` journal event and
    re-raises, so callers (the campaign service's drain path) see the
    same resumable-journal contract as a SIGINT.
    """

    def __init__(self, finished: int = 0) -> None:
        super().__init__(f"batch cancelled after {finished} finished jobs")
        self.finished = finished


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential retry backoff with deterministic seeded jitter.

    The delay before retry attempt ``attempt`` (2 = first retry) is::

        base * factor**(attempt - 2)    capped at max_delay

    then jittered by up to ``+-jitter`` (a fraction) using a hash of
    ``(seed, key, attempt)`` -- a pure function, so two runs of the
    same plan back off identically while distinct jobs (distinct
    keys) desynchronize.
    """

    base: float = 0.1
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"backoff base must be >= 0, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"backoff factor must be >= 1, got {self.factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before dispatching retry *attempt* of *key*."""
        if self.base == 0:
            return 0.0
        raw = min(self.max_delay, self.base * self.factor ** max(0, attempt - 2))
        if self.jitter == 0:
            return raw
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        # 8 bytes of hash -> a uniform fraction in [0, 1).
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 + self.jitter * (2.0 * fraction - 1.0))


class BreakerState:
    """Lifecycle of one breaker entry (plain strings, JSON-friendly)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class _Entry:
    __slots__ = ("failures", "state", "opened_at", "probing")

    def __init__(self) -> None:
        self.failures = 0
        self.state = BreakerState.CLOSED
        self.opened_at = 0.0
        self.probing = False


class CircuitBreaker:
    """Per-key failure supervision with open/half-open/closed states.

    Keys are spec fingerprints (any string works).  ``threshold``
    consecutive failures trip the key open; after ``cooldown`` seconds
    the next :meth:`allow` admits exactly one half-open probe, whose
    outcome (:meth:`record_success` / :meth:`record_failure`) closes
    or re-opens the breaker.  ``now`` is injectable so chaos tests can
    drive the cooldown deterministically.
    """

    def __init__(
        self,
        *,
        threshold: int = 3,
        cooldown: float = 30.0,
        now: Callable[[], float] = clock.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"breaker cooldown must be > 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self.now = now
        self._entries: dict[str, _Entry] = {}

    # ------------------------------------------------------------------
    def _entry(self, key: str) -> _Entry:
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = _Entry()
        return entry

    def state(self, key: str) -> str:
        """The key's current state, applying any due cooldown expiry."""
        entry = self._entries.get(key)
        if entry is None:
            return BreakerState.CLOSED
        if (
            entry.state == BreakerState.OPEN
            and self.now() - entry.opened_at >= self.cooldown
        ):
            entry.state = BreakerState.HALF_OPEN
            entry.probing = False
            coll = _active_collector()
            if coll is not None:
                coll.count("engine.breaker.half_open")
        return entry.state

    def retry_after(self, key: str) -> float:
        """Seconds until an open key half-opens (0 when admissible)."""
        entry = self._entries.get(key)
        if entry is None or entry.state != BreakerState.OPEN:
            return 0.0
        return max(0.0, self.cooldown - (self.now() - entry.opened_at))

    def allow(self, key: str) -> bool:
        """May a job with this key be dispatched right now?

        Closed keys always pass.  Open keys are refused until the
        cooldown expires; the first ``allow`` after expiry admits the
        half-open probe, and further calls are refused until the
        probe's outcome is recorded.
        """
        state = self.state(key)
        if state == BreakerState.CLOSED:
            return True
        if state == BreakerState.OPEN:
            return False
        entry = self._entry(key)
        if entry.probing:
            return False
        entry.probing = True
        return True

    # ------------------------------------------------------------------
    def record_success(self, key: str) -> None:
        """A dispatch with this key finished; close and forget it."""
        self._entries.pop(key, None)

    def record_failure(self, key: str) -> str | None:
        """Account one crash/hang; returns the transition it caused.

        ``"opened"`` -- the failure count reached the threshold and the
        breaker tripped; ``"reopened"`` -- a half-open probe failed;
        ``None`` -- the key is still closed (or already open).
        """
        entry = self._entry(key)
        state = self.state(key)
        coll = _active_collector()
        if state == BreakerState.HALF_OPEN:
            entry.state = BreakerState.OPEN
            entry.opened_at = self.now()
            entry.probing = False
            entry.failures += 1
            if coll is not None:
                coll.count("engine.breaker.reopen")
            return "reopened"
        entry.failures += 1
        if state == BreakerState.CLOSED and entry.failures >= self.threshold:
            entry.state = BreakerState.OPEN
            entry.opened_at = self.now()
            if coll is not None:
                coll.count("engine.breaker.open")
            return "opened"
        return None

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able view for diagnostics endpoints (``/healthz``)."""
        return {
            key: {
                "state": self.state(key),
                "failures": entry.failures,
                "retry_after": round(self.retry_after(key), 3),
            }
            for key, entry in sorted(self._entries.items())
        }
