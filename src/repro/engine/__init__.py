"""repro.engine -- parallel batch verification with caching and journaling.

The paper's headline claim is that symbolic expansion makes protocol
verification cheap enough to run *routinely* over whole families of
protocols.  This subsystem owns that workflow: it turns "verify many
specifications" from a for-loop in a script into a serving-shaped
engine with

* a picklable job model (:class:`VerificationJob`) and canonical spec
  fingerprints (:func:`spec_fingerprint`),
* a crash-isolated multiprocessing pool with per-job timeouts and
  bounded retries (:class:`ParallelRunner`, serial fallback included),
* a persistent content-addressed result cache (:class:`ResultCache`)
  so re-running a zoo or mutant sweep only verifies changed specs,
* a structured JSONL run journal (:class:`RunJournal`) with an
  end-of-run summary table,
* cooperative resource budgets (:class:`Budget` / :class:`Guard`) that
  degrade exhausted runs into first-class *partial* results instead of
  errors, with crash-safe incremental journaling so interrupted
  batches resume via ``run_batch(..., resume=RunJournal.read(path))``,
  and
* a deterministic fault-injection harness (:mod:`repro.engine.faults`)
  that the chaos tests use to prove all of the above under worker
  crashes, hangs, torn journals and corrupt cache entries, and
* supervised-retry policies (:mod:`repro.engine.resilience`):
  exponential backoff with deterministic jitter, a per-fingerprint
  circuit breaker that quarantines repeat offenders
  (:class:`CircuitBreaker`, ``quarantined`` results), and a graceful
  drain-cancel contract (:class:`BatchCancelled`) used by the service
  layer for clean shutdowns.

Quickstart::

    from repro.engine import VerificationJob, ResultCache, run_batch

    jobs = [VerificationJob(protocol=name) for name in ("msi", "illinois")]
    report = run_batch(jobs, workers=4, cache=ResultCache())
    print(report.summary_table())

The CLI front end is ``repro batch`` (see ``repro batch --help``), and
``repro mutants`` / the fragility sweep run on the same engine.
"""

from .batch import BatchReport, run_batch
from .cache import ResultCache, default_cache_dir
from .fingerprint import ENGINE_VERSION, job_key, spec_fingerprint
from .guard import Budget, Exhaustion, ExhaustionReason, Guard, current_rss_mb
from .job import JobResult, JobStatus, VerificationJob, execute_job
from .journal import JournalFollower, RunJournal
from .resilience import BackoffPolicy, BatchCancelled, BreakerState, CircuitBreaker
from .runner import ParallelRunner, SerialRunner, make_runner

__all__ = [
    "ENGINE_VERSION",
    "BackoffPolicy",
    "BatchCancelled",
    "BatchReport",
    "BreakerState",
    "Budget",
    "CircuitBreaker",
    "Exhaustion",
    "ExhaustionReason",
    "Guard",
    "JobResult",
    "JobStatus",
    "JournalFollower",
    "ParallelRunner",
    "ResultCache",
    "RunJournal",
    "SerialRunner",
    "VerificationJob",
    "current_rss_mb",
    "default_cache_dir",
    "execute_job",
    "job_key",
    "make_runner",
    "run_batch",
    "spec_fingerprint",
]
