"""Cooperative resource budgets: degrade gracefully instead of dying.

Theorem 1 guarantees the symbolic expansion *terminates*, but says
nothing about *when*: mutant zoos, adversarial DSL specs and the
explicit Figure 2 baseline at large ``n`` all hit wall-clock limits,
state explosion or memory pressure long before convergence.  A
:class:`Guard` turns those hard failures into structured **partial
results**: the expansion loops poll the guard, and when a budget is
exhausted they stop cleanly and return everything computed so far --
the essential-set prefix, the unexplored frontier and the exhaustion
reason -- instead of raising or being SIGKILLed with nothing to show.

The design is deliberately cooperative (the Murphi / SPIN lineage of
bounded search): the guard never interrupts anything itself.  Hot
loops call :meth:`Guard.check` once per generated state; the integer
budgets, the monotonic clock and the cancel flag are all cheap enough
to consult on every call (generating one symbolic state costs orders
of magnitude more), while the RSS probe -- a procfs read -- is only
polled every ``rss_stride`` calls.

Budgets:

* ``deadline`` -- wall-clock seconds for the run (monotonic clock);
* ``max_visits`` -- generated-state budget (the paper's "visits");
* ``max_states`` -- retained-state budget (worklist + essential set);
* ``max_rss_mb`` -- resident-set watchdog, polled from
  ``/proc/self/status`` where available (silently disabled elsewhere);
* ``cancel`` -- an external cancellation flag (any object with
  ``is_set()``, e.g. ``multiprocessing.Event``); this is how the
  parallel runner's soft-cancel grace window asks a worker to wrap up
  and emit its partial result before the SIGKILL deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol

from ..obs import active as _active_collector
from ..obs import clock

__all__ = [
    "ExhaustionReason",
    "Exhaustion",
    "Budget",
    "Guard",
    "current_rss_mb",
]


class ExhaustionReason:
    """Why a guarded run stopped early (plain strings, JSON-friendly)."""

    DEADLINE = "deadline"
    VISITS = "visits"
    STATES = "states"
    RSS = "rss"
    #: An external soft-cancel (runner timeout grace window, SIGINT...).
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class Exhaustion:
    """One exhausted budget: the reason, the limit and the observed value."""

    reason: str
    limit: float | None
    observed: float

    def describe(self) -> str:
        """Human-readable one-liner for reports and error fields."""
        if self.reason == ExhaustionReason.CANCELLED:
            return "cancelled by the runner"
        unit = {
            ExhaustionReason.DEADLINE: "s",
            ExhaustionReason.VISITS: " visits",
            ExhaustionReason.STATES: " states",
            ExhaustionReason.RSS: " MB RSS",
        }[self.reason]
        return f"exhausted {self.reason} budget ({self.limit:g}{unit})"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering for payloads and journal events."""
        return {
            "reason": self.reason,
            "limit": self.limit,
            "observed": round(self.observed, 3),
        }


@dataclass(frozen=True)
class Budget:
    """Declarative resource limits for one verification run.

    All fields are optional; ``None`` disables that budget.  An empty
    budget (plus no cancel flag) makes :meth:`Guard.check` a no-op.
    """

    deadline: float | None = None
    max_visits: int | None = None
    max_states: int | None = None
    max_rss_mb: float | None = None

    def __post_init__(self) -> None:
        for name in ("deadline", "max_visits", "max_states", "max_rss_mb"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"budget {name} must be positive, got {value}")

    @property
    def bounded(self) -> bool:
        """True iff at least one budget is set."""
        return any(
            value is not None
            for value in (
                self.deadline,
                self.max_visits,
                self.max_states,
                self.max_rss_mb,
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-able rendering (for journal/cache records)."""
        return {
            "deadline": self.deadline,
            "max_visits": self.max_visits,
            "max_states": self.max_states,
            "max_rss_mb": self.max_rss_mb,
        }


class _CancelFlag(Protocol):  # pragma: no cover - typing only
    def is_set(self) -> bool: ...


def current_rss_mb() -> float | None:
    """Resident set size of this process in MB, or ``None`` if unknown.

    Reads ``/proc/self/status`` (Linux); on platforms without procfs
    the RSS watchdog silently disables itself rather than guessing.
    """
    try:
        text = Path("/proc/self/status").read_text(encoding="ascii")
    except OSError:
        return None
    for line in text.splitlines():
        if line.startswith("VmRSS:"):
            parts = line.split()
            if len(parts) >= 2 and parts[1].isdigit():
                return int(parts[1]) / 1024.0  # kB -> MB
    return None


class Guard:
    """Polls a :class:`Budget` (and an optional cancel flag) cheaply.

    The guard is created when the run starts (it captures the start
    time) and is then polled from the hot loop.  Once exhausted it
    stays exhausted: every later ``check`` returns the same
    :class:`Exhaustion`, so a loop that misses one poll still stops at
    the next.
    """

    __slots__ = (
        "budget",
        "cancel",
        "rss_stride",
        "started",
        "exhausted",
        "_calls",
    )

    def __init__(
        self,
        budget: Budget | None = None,
        *,
        cancel: _CancelFlag | None = None,
        rss_stride: int = 64,
    ) -> None:
        self.budget = budget if budget is not None else Budget()
        self.cancel = cancel
        self.rss_stride = max(1, int(rss_stride))
        self.started = clock.monotonic()
        self.exhausted: Exhaustion | None = None
        self._calls = 0

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True iff this guard can ever trip (some budget or a cancel)."""
        return self.budget.bounded or self.cancel is not None

    def elapsed(self) -> float:
        """Seconds since the guard was armed."""
        return clock.monotonic() - self.started

    # ------------------------------------------------------------------
    def check(self, *, visits: int = 0, states: int = 0) -> Exhaustion | None:
        """Poll every budget; the first exhausted one wins and sticks.

        ``visits`` and ``states`` are the caller's running totals.
        Everything except the RSS probe is consulted on every call; the
        procfs read happens only every ``rss_stride`` calls.
        """
        if self.exhausted is not None:
            return self.exhausted
        self._calls += 1
        coll = _active_collector()
        if coll is not None:
            coll.count("guard.checks")
        budget = self.budget
        if budget.max_visits is not None and visits >= budget.max_visits:
            return self._trip(ExhaustionReason.VISITS, budget.max_visits, visits)
        if budget.max_states is not None and states >= budget.max_states:
            return self._trip(ExhaustionReason.STATES, budget.max_states, states)
        if self.cancel is not None and self.cancel.is_set():
            return self._trip(ExhaustionReason.CANCELLED, None, 1.0)
        if budget.deadline is not None:
            elapsed = self.elapsed()
            if elapsed >= budget.deadline:
                return self._trip(ExhaustionReason.DEADLINE, budget.deadline, elapsed)
        if budget.max_rss_mb is not None and self._calls % self.rss_stride == 0:
            rss = current_rss_mb()
            if rss is not None and rss >= budget.max_rss_mb:
                return self._trip(ExhaustionReason.RSS, budget.max_rss_mb, rss)
        return None

    def _trip(self, reason: str, limit: float | None, observed: float) -> Exhaustion:
        self.exhausted = Exhaustion(reason, limit, float(observed))
        coll = _active_collector()
        if coll is not None:
            coll.count("guard.exhausted")
        return self.exhausted
