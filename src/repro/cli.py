"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands cover the full workflow a protocol designer would use:

* ``repro list`` -- the protocol zoo;
* ``repro verify illinois`` -- symbolic verification with report,
  diagram and counterexamples;
* ``repro mutants illinois`` -- verify every injected-bug variant;
* ``repro enumerate illinois -n 4`` -- the explicit Figure 2 baseline;
* ``repro crossval illinois`` -- the Theorem 1 completeness check;
* ``repro simulate illinois -w hot-block`` -- run the executable
  multiprocessor on a synthetic workload;
* ``repro compare illinois firefly`` -- diagram similarity analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .analysis.compare import compare_protocols
from .analysis.reporting import expansion_listing, figure4_table, format_table
from .core.essential import PruningMode, explore
from .core.graph import to_dot
from .analysis.fsm import check_definition_1
from .core.serialize import result_to_json
from .core.verifier import verify
from .enumeration.crossval import cross_validate
from .enumeration.exhaustive import Equivalence, enumerate_space
from .protocols.dsl import load_protocol
from .protocols.perturb import criticality_profile
from .protocols.mutations import MUTATIONS, get_mutant, mutants_for
from .protocols.registry import all_protocols, get_protocol
from .simulator.system import System
from .simulator.traceio import load_trace, save_trace
from .simulator.workloads import WORKLOADS, make_workload

__all__ = ["main", "build_parser"]


def _resolve_specs(name: str):
    """Resolve a protocol argument, allowing the pseudo-name ``all``."""
    if name == "all":
        return all_protocols()
    return [get_protocol(name)]


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in all_protocols():
        rows.append(
            [
                spec.name,
                spec.full_name,
                len(spec.states),
                "sharing-detection" if spec.uses_sharing_detection else "null",
            ]
        )
    print(format_table(["name", "protocol", "|Q|", "F"], rows))
    print()
    print("mutations:", ", ".join(MUTATIONS))
    print("workloads:", ", ".join(WORKLOADS))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    status = 0
    if args.spec_file:
        specs = [load_protocol(args.spec_file)]
    else:
        specs = _resolve_specs(args.protocol)
    for spec in specs:
        if args.mutant:
            spec = get_mutant(spec, args.mutant)
        report = verify(
            spec,
            augmented=not args.structural,
            pruning=PruningMode.DUPLICATES if args.no_pruning else PruningMode.CONTAINMENT,
            validate_spec=not args.mutant,
        )
        if args.quiet:
            print(report)
        else:
            print(report.render())
            if report.result.augmented:
                print(figure4_table(report.result))
                print()
        if args.trace:
            traced = explore(spec, augmented=not args.structural, keep_trace=True)
            print(expansion_listing(traced))
            print()
        if args.dot:
            dot = to_dot(report.result)
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(dot + "\n")
            print(f"DOT diagram written to {args.dot}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(result_to_json(report.result) + "\n")
            print(f"JSON result written to {args.json}")
        if not report.ok:
            status = 1
    return status


def _cmd_mutants(args: argparse.Namespace) -> int:
    rows = []
    escaped = 0
    for spec in _resolve_specs(args.protocol):
        for mutant in mutants_for(spec):
            report = verify(mutant, validate_spec=False)
            verdict = "KILLED" if not report.ok else "SURVIVED"
            if report.ok:
                escaped += 1
            kinds = ",".join(sorted({v.kind.value for v in report.violations})) or "-"
            rows.append(
                [mutant.name, verdict, report.result.stats.visits, kinds]
            )
    print(
        format_table(
            ["mutant", "verdict", "visits", "violation kinds"],
            rows,
            title="Injected-bug detection by the symbolic verifier",
        )
    )
    if escaped:
        print(f"\nWARNING: {escaped} mutants escaped the verifier")
        return 1
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    spec = get_protocol(args.protocol)
    equivalence = Equivalence.COUNTING if args.counting else Equivalence.STRICT
    result = enumerate_space(spec, args.n, equivalence=equivalence)
    print(
        f"{spec.name}, n={args.n}, {equivalence.value} equivalence: "
        f"{result.stats.unique_states} states, {result.stats.visits} visits, "
        f"{'no violations' if result.ok else 'VIOLATIONS FOUND'}"
    )
    if args.show_states:
        for state in result.states:
            print("  ", state.pretty())
    return 0 if result.ok else 1


def _cmd_crossval(args: argparse.Namespace) -> int:
    status = 0
    for spec in _resolve_specs(args.protocol):
        result = cross_validate(spec, ns=tuple(range(1, args.max_n + 1)))
        print(result.summary())
        if not result.ok:
            status = 1
    return status


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = get_protocol(args.protocol)
    if args.mutant:
        spec = get_mutant(spec, args.mutant)
    if args.trace_file:
        trace = load_trace(args.trace_file)
        if trace.processors > args.processors:
            args.processors = trace.processors
    else:
        trace = make_workload(
            args.workload, args.processors, args.length, seed=args.seed
        )
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"trace written to {args.save_trace}")
    system = System(spec, args.processors, num_sets=args.sets, strict=False)
    report = system.run(trace, stop_on_violation=args.stop_on_violation)
    print(f"{spec.name} on {trace.describe()}")
    print(report.summary())
    for violation in report.violations[:5]:
        print("  ", violation)
    return 0 if report.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    result_a = explore(get_protocol(args.a))
    result_b = explore(get_protocol(args.b))
    print(compare_protocols(result_a, result_b).render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweeps import sweep_table, traffic_sweep

    points = traffic_sweep(
        _resolve_specs(args.protocol),
        [args.workload],
        args.processors,
        length=args.length,
        seed=args.seed,
        workers=args.workers,
    )
    print(sweep_table(points, workload=args.workload))
    return 0 if all(p.violations == 0 for p in points) else 1


def _cmd_fragility(args: argparse.Namespace) -> int:
    for spec in _resolve_specs(args.protocol):
        report = criticality_profile(spec, picks=args.picks)
        print(
            format_table(
                ["state", "op", "broken/judged", "fragility"],
                report.site_rows(),
                title=f"fragility map -- {spec.full_name or spec.name}",
            )
        )
        print(
            f"  {report.attempted} edits, {report.ill_formed} ill-formed, "
            f"{report.survived} survived, {report.broken} broke coherence "
            f"({report.fragility:.0%} fragility)\n"
        )
    return 0


def _cmd_fsm(args: argparse.Namespace) -> int:
    status = 0
    for spec in _resolve_specs(args.protocol):
        problems = check_definition_1(spec)
        if problems:
            status = 1
            print(f"{spec.name}: Definition 1 VIOLATED")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{spec.name}: cache FSM strongly connected (Definition 1 ok)")
    return status


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic verification of cache coherence protocols "
        "(Pong & Dubois, SPAA 1993 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list protocols, mutations and workloads")

    p = sub.add_parser("verify", help="symbolically verify a protocol")
    p.add_argument(
        "protocol",
        nargs="?",
        default="all",
        help="protocol name or 'all' (ignored with --spec-file)",
    )
    p.add_argument(
        "--spec-file",
        metavar="FILE",
        help="verify a protocol written in the specification language",
    )
    p.add_argument("--structural", action="store_true", help="skip context variables")
    p.add_argument("--no-pruning", action="store_true", help="duplicate-only pruning")
    p.add_argument("--mutant", choices=sorted(MUTATIONS), help="inject a bug first")
    p.add_argument("--trace", action="store_true", help="print the expansion steps")
    p.add_argument("--dot", metavar="FILE", help="write the diagram as DOT")
    p.add_argument("--json", metavar="FILE", help="write the full result as JSON")
    p.add_argument("--quiet", action="store_true", help="one-line summaries only")

    p = sub.add_parser("mutants", help="verify every injected-bug variant")
    p.add_argument("protocol", help="protocol name or 'all'")

    p = sub.add_parser("enumerate", help="explicit Figure 2 state enumeration")
    p.add_argument("protocol")
    p.add_argument("-n", type=int, default=3, help="number of caches")
    p.add_argument("--counting", action="store_true", help="Definition 5 equivalence")
    p.add_argument("--show-states", action="store_true")

    p = sub.add_parser("crossval", help="Theorem 1 cross-validation")
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument("--max-n", type=int, default=4)

    p = sub.add_parser("simulate", help="run the executable multiprocessor")
    p.add_argument("protocol")
    p.add_argument("-w", "--workload", choices=sorted(WORKLOADS), default="hot-block")
    p.add_argument("-p", "--processors", type=int, default=4)
    p.add_argument("-l", "--length", type=int, default=10000)
    p.add_argument("--sets", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mutant", choices=sorted(MUTATIONS))
    p.add_argument("--stop-on-violation", action="store_true")
    p.add_argument("--trace-file", metavar="FILE", help="replay a saved trace")
    p.add_argument("--save-trace", metavar="FILE", help="save the trace used")

    p = sub.add_parser("compare", help="compare two protocols' diagrams")
    p.add_argument("a")
    p.add_argument("b")

    p = sub.add_parser("fsm", help="Definition 1 checks on the cache FSM")
    p.add_argument("protocol", help="protocol name or 'all'")

    p = sub.add_parser(
        "fragility", help="verify every single-point edit of a protocol"
    )
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument("--picks", type=int, default=2)

    p = sub.add_parser("sweep", help="traffic sweep across machine sizes")
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument("-w", "--workload", choices=sorted(WORKLOADS), default="hot-block")
    p.add_argument("-p", "--processors", type=int, nargs="+", default=[2, 4, 8])
    p.add_argument("-l", "--length", type=int, default=8000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "verify": _cmd_verify,
    "mutants": _cmd_mutants,
    "enumerate": _cmd_enumerate,
    "crossval": _cmd_crossval,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "fsm": _cmd_fsm,
    "fragility": _cmd_fragility,
    "sweep": _cmd_sweep,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
