"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands cover the full workflow a protocol designer would use:

* ``repro list`` -- the protocol zoo;
* ``repro verify illinois`` -- symbolic verification with report,
  diagram and counterexamples;
* ``repro batch --protocols all --mutants --jobs 8`` -- the batch
  engine: parallel verification with result caching and a run journal;
* ``repro lint --all`` -- the static protocol analyzer: PLxxx rules
  over specs without running expansion (text/JSON/SARIF output;
  ``--explain PLxxx`` documents one rule);
* ``repro ir dump illinois`` -- lower a spec to the canonical
  guarded-action IR and print it (``--fingerprint`` for the stable
  content hash);
* ``repro profile illinois`` -- verify under ``repro.obs``
  instrumentation: per-phase spans and counters as a text report plus
  a Chrome-trace / JSON / Prometheus export;
* ``repro mutants illinois`` -- verify every injected-bug variant;
* ``repro enumerate illinois -n 4`` -- the explicit Figure 2 baseline;
* ``repro crossval illinois`` -- the Theorem 1 completeness check;
* ``repro simulate illinois -w hot-block`` -- run the executable
  multiprocessor on a synthetic workload;
* ``repro fuzz --seed 42`` -- differential fuzzing: generated
  protocols through both engines, disagreements shrunk and persisted
  to the regression corpus (``--replay`` re-verifies the corpus);
* ``repro serve --port 8642`` -- the campaign service: a long-running
  asyncio HTTP front end on the batch engine with priority lanes,
  per-tenant budgets, SSE event streams and the shared result cache;
* ``repro submit URL --protocols all`` / ``repro watch URL ID`` -- the
  matching clients: submit a campaign, stream its journal live, exit
  with the campaign's own 0/1/2 status;
* ``repro compare illinois firefly`` -- diagram similarity analysis.

Every subcommand uses the same exit-status convention (documented in
``repro --help``): 0 for success, 1 when verification found violations
(or mutants escaped), 2 for usage, specification or input errors.
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Sequence

from .analysis.compare import compare_protocols
from .analysis.reporting import expansion_listing, figure4_table, format_table
from .core.essential import PruningMode, explore
from .core.graph import to_dot
from .analysis.fsm import check_definition_1
from .core.protocol import ProtocolDefinitionError
from .core.serialize import result_to_json
from .core.verifier import verify
from .enumeration.crossval import cross_validate
from .enumeration.exhaustive import Equivalence, enumerate_space
from .obs import EXPORT_EXTENSIONS, EXPORTERS
from .protocols.dsl import DslError, load_protocol, parse_protocol
from .protocols.perturb import criticality_profile
from .protocols.mutations import (
    LIVENESS_MUTATIONS,
    MUTATIONS,
    get_mutant,
    mutants_for,
)

#: --mutant accepts keys from both catalogs (safety bugs and the
#: safety-clean starvation bugs only liveness modes reject).
_MUTANT_CHOICES = sorted({**MUTATIONS, **LIVENESS_MUTATIONS})
from .protocols.registry import all_protocols, protocol_names, resolve_specs
from .simulator.system import System
from .simulator.traceio import load_trace, save_trace
from .simulator.workloads import WORKLOADS, make_workload

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_VIOLATION",
    "EXIT_ERROR",
    "EXIT_INTERRUPTED",
]

#: Exit status: every requested check passed.
EXIT_OK = 0
#: Exit status: verification found violations / mutants escaped.
EXIT_VIOLATION = 1
#: Exit status: usage, specification or input error.
EXIT_ERROR = 2
#: Exit status: interrupted by SIGINT (128 + signal number 2).  The
#: batch engine flushes a ``run_aborted`` journal event first, so the
#: run can be picked up again with ``repro batch --resume``.  SIGTERM
#: gets the same treatment and exits 143 (128 + 15) -- see
#: :data:`_last_signal`.
EXIT_INTERRUPTED = 130

#: The terminating signal a CLI trampoline recorded before raising
#: ``KeyboardInterrupt``; ``main`` turns it into the conventional
#: 128+signum exit status (143 for SIGTERM).  ``None`` outside signal
#: handling (a plain Ctrl-C raises KeyboardInterrupt natively).
_last_signal: int | None = None


def _signal_to_interrupt(signum: int, frame: object) -> None:
    """Route SIGTERM through the SIGINT path: journal, then 128+signum.

    An orchestrator's kill must behave like an operator's Ctrl-C --
    the batch engine flushes ``run_aborted`` and keeps every journaled
    result -- differing only in the exit status reported.
    """
    global _last_signal
    _last_signal = signum
    raise KeyboardInterrupt

_EXIT_STATUS_DOC = """\
exit status:
  0   success -- every requested check passed
  1   verification found violations (or mutants escaped the verifier,
      or lint found error-severity problems)
  2   usage, specification or input error (unknown protocol, bad spec
      file, malformed arguments, crashed/timed-out batch jobs,
      budget-exhausted partial results, preflight-rejected
      specifications)
  130 interrupted (SIGINT, 128+2); an interrupted batch flushes its
      journal and can be continued with `repro batch --resume JOURNAL`
  143 terminated (SIGTERM, 128+15); same journal semantics as 130
"""


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for spec in all_protocols():
        rows.append(
            [
                spec.name,
                spec.full_name,
                len(spec.states),
                "sharing-detection" if spec.uses_sharing_detection else "null",
            ]
        )
    print(format_table(["name", "protocol", "|Q|", "F"], rows))
    print()
    print("mutations:", ", ".join(MUTATIONS))
    print("liveness mutations:", ", ".join(LIVENESS_MUTATIONS))
    print("workloads:", ", ".join(WORKLOADS))
    return EXIT_OK


def _cmd_verify(args: argparse.Namespace) -> int:
    status = EXIT_OK
    if args.spec_file:
        if args.preflight:
            # Parse leniently: the preflight (not the structural
            # validator) should be the one reporting static problems.
            from pathlib import Path

            text = Path(args.spec_file).read_text(encoding="utf-8")
            specs = [
                parse_protocol(
                    text,
                    default_name=Path(args.spec_file).stem,
                    source_path=args.spec_file,
                )
            ]
        else:
            specs = [load_protocol(args.spec_file)]
    else:
        specs = resolve_specs(args.protocol)
    for spec in specs:
        if args.mutant:
            spec = get_mutant(spec, args.mutant)
        report = verify(
            spec,
            augmented=not args.structural,
            pruning=PruningMode.DUPLICATES if args.no_pruning else PruningMode.CONTAINMENT,
            validate_spec=not args.mutant,
            preflight=args.preflight or "off",
            mode=args.mode,
        )
        if report.lint is not None and not report.lint.clean:
            for diagnostic in report.lint.diagnostics:
                print(f"lint: {diagnostic.render(report.lint.target)}")
        if args.quiet:
            print(report)
        else:
            print(report.render())
            if report.result.augmented:
                print(figure4_table(report.result))
                print()
        if args.trace:
            traced = explore(spec, augmented=not args.structural, keep_trace=True)
            print(expansion_listing(traced))
            print()
        if args.dot:
            dot = to_dot(report.result)
            with open(args.dot, "w", encoding="utf-8") as fh:
                fh.write(dot + "\n")
            print(f"DOT diagram written to {args.dot}")
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(result_to_json(report.result) + "\n")
            print(f"JSON result written to {args.json}")
        if not report.ok:
            status = EXIT_VIOLATION
    return status


def _cmd_batch(args: argparse.Namespace) -> int:
    from .engine import (
        BackoffPolicy,
        CircuitBreaker,
        ResultCache,
        RunJournal,
        VerificationJob,
        run_batch,
    )

    jobs: list[VerificationJob] = []
    names: list[str] = []
    for name in args.protocols:
        if name == "all":
            names.extend(protocol_names())
        elif name == "none":  # spec-file-only batches
            continue
        else:
            names.append(name)
    for name in dict.fromkeys(names):  # dedupe, keep order
        [spec] = resolve_specs(name)  # raises KeyError for unknown names
        jobs.append(
            VerificationJob(
                protocol=name,
                augmented=not args.structural,
                validate_spec=True,
                deadline=args.deadline,
            )
        )
        if args.mutants:
            for mutant in mutants_for(spec):
                jobs.append(
                    VerificationJob(
                        protocol=name,
                        mutant=mutant.mutation.key,
                        augmented=not args.structural,
                        deadline=args.deadline,
                    )
                )
    for path in args.spec_file:
        jobs.append(
            VerificationJob(
                spec_file=path,
                augmented=not args.structural,
                deadline=args.deadline,
            )
        )

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    resume_events = None
    journal_path = args.journal
    journal_mode = "new"
    if args.resume:
        if args.journal and args.journal != args.resume:
            raise ValueError(
                "--resume continues the given journal; do not also pass "
                "a different --journal"
            )
        resume_events = RunJournal.read(args.resume)
        journal_path = args.resume
        journal_mode = "append"
    backoff = (
        BackoffPolicy(base=args.backoff) if args.backoff is not None else None
    )
    breaker = (
        CircuitBreaker(
            threshold=args.breaker_threshold, cooldown=args.breaker_cooldown
        )
        if args.breaker_threshold is not None
        else None
    )
    # A container orchestrator's SIGTERM aborts the run exactly like
    # Ctrl-C: journal flushed, exit 128+15.  Restored afterwards so
    # the handler never leaks into other subcommands run in the same
    # interpreter (tests).
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _signal_to_interrupt)
    except ValueError:  # not the main thread; keep the default handler
        previous_sigterm = None
    try:
        with RunJournal(journal_path, mode=journal_mode) as journal:
            report = run_batch(
                jobs,
                workers=args.jobs,
                cache=cache,
                journal=journal,
                timeout=args.timeout,
                retries=args.retries,
                grace=args.grace,
                preflight=args.preflight,
                backend=args.backend,
                mode=args.mode,
                resume=resume_events,
                backoff=backoff,
                breaker=breaker,
            )
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    print(report.summary_table())
    lint_findings = report.lint_table()
    if lint_findings:
        print()
        print(lint_findings)
    print()
    print(report.counts_line())
    if journal_path:
        print(f"journal written to {journal_path}")
    return report.exit_code


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .engine import ResultCache, RunJournal
    from .testkit import (
        CampaignConfig,
        Corpus,
        GeneratorConfig,
        OracleBudget,
        run_campaign,
    )

    if args.replay:
        corpus = Corpus(args.corpus)
        entries = corpus.entries()
        if not entries:
            raise ValueError(f"no corpus entries under {args.corpus}")
        replay = corpus.replay()
        print(replay.describe())
        return EXIT_OK if replay.ok else EXIT_VIOLATION

    if args.count < 1:
        raise ValueError("--count must be at least 1")
    if not 1 <= args.max_n <= 5:
        raise ValueError("--max-n must be between 1 and 5")
    if args.soundness_max_n < args.max_n:
        raise ValueError("--soundness-max-n must be at least --max-n")
    budget = OracleBudget(
        ns=tuple(range(1, args.max_n + 1)),
        soundness_ns=tuple(range(1, args.soundness_max_n + 1)),
        symbolic_visits=args.max_visits,
        concrete_visits=args.concrete_visits,
        deadline=args.deadline,
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    with RunJournal(args.journal) as journal:
        report = run_campaign(
            CampaignConfig(
                seed=args.seed,
                count=args.count,
                mode=args.mode,
                generator=GeneratorConfig(p_stall=args.p_stall),
                budget=budget,
                workers=args.jobs,
                corpus_dir=None if args.no_persist else args.corpus,
                journal=journal,
                cache=cache,
            )
        )
    print(report.describe())
    if args.findings:
        Path(args.findings).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"findings written to {args.findings}")
    if args.journal:
        print(f"journal written to {args.journal}")
    return EXIT_OK if report.ok else EXIT_VIOLATION


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .engine import BackoffPolicy, CircuitBreaker, ResultCache
    from .serve import AdmissionPolicy, ServeApp

    tenants: dict[str, float] = {}
    for item in args.tenant:
        name, sep, seconds = item.partition("=")
        if not sep or not name:
            raise ValueError(f"--tenant wants NAME=SECONDS, got {item!r}")
        tenants[name] = float(seconds)  # ValueError on garbage -> exit 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    app = ServeApp(
        args.state_dir,
        cache=cache,
        workers=args.workers,
        job_workers=args.job_workers,
        tenants=tenants or None,
        preflight=args.preflight,
        admission=AdmissionPolicy(
            max_lane_depth=args.max_queue, max_in_flight=args.max_inflight
        ),
        read_timeout=args.read_timeout if args.read_timeout > 0 else None,
        drain_grace=args.drain_grace,
        # The service always runs resilient: supervised retries back
        # off, and a spec that keeps killing workers is quarantined
        # service-wide instead of re-crashing every campaign.
        backoff=BackoffPolicy(),
        breaker=CircuitBreaker(),
    )
    asyncio.run(app.serve_forever(args.host, args.port))
    return EXIT_OK


def _submit_payload(args: argparse.Namespace) -> dict:
    """The POST /campaigns body for one ``repro submit`` invocation."""
    from pathlib import Path

    payload: dict = {"protocols": args.protocols, "mutants": args.mutants}
    specs = {}
    for path in args.spec_file:
        specs[Path(path).stem] = Path(path).read_text(encoding="utf-8")
    if specs:
        payload["specs"] = specs
    if args.tenant != "default":
        payload["tenant"] = args.tenant
    if args.priority != "normal":
        payload["priority"] = args.priority
    if args.structural:
        payload["structural"] = True
    if args.preflight:
        payload["preflight"] = args.preflight
    if args.deadline is not None:
        payload["deadline"] = args.deadline
    if args.mode != "safety":
        payload["mode"] = args.mode
    return payload


def _render_event(record: dict) -> str:
    """One human-readable line per streamed journal event."""
    kind = record.get("event", "?")
    bits = [kind]
    if "job" in record:
        bits.append(str(record["job"]))
    if kind == "job_finish":
        bits.append(str(record.get("status")))
        if record.get("cached"):
            bits.append("(cache)")
    elif kind == "run_start":
        bits.append(f"{record.get('jobs')} jobs")
    elif kind == "run_end":
        bits.append(
            f"{record.get('verified')} verified, "
            f"{record.get('violations')} violations, "
            f"{record.get('errors')} errors"
        )
    elif kind == "run_resume":
        bits.append(f"{record.get('completed')} replayed")
    return "  ".join(bits)


def _watch_campaign(
    url: str, campaign: str, *, offset: int = 0, quiet: bool = False
) -> int:
    """Stream one campaign to the end; return its 0/1/2 exit status."""
    from .serve import client

    def show(event: client.SseEvent) -> None:
        if quiet:
            return
        print(_render_event(event.json()))

    final = client.watch(url, campaign, offset=offset, on_event=show)
    counts = (final.get("report") or {}).get("counts")
    if counts:
        print(
            f"{campaign}: {counts['jobs']} jobs, "
            f"{counts['verified']} verified, "
            f"{counts['violations']} violations, "
            f"{counts['errors']} errors, {counts['partials']} partial; "
            f"{counts['cache_hits']} cache hits"
        )
    if final.get("error"):
        print(f"{campaign}: {final['state']}: {final['error']}", file=sys.stderr)
    code = final.get("exit_code")
    return EXIT_ERROR if code is None else int(code)


def _cmd_submit(args: argparse.Namespace) -> int:
    from .serve import client

    accepted = client.submit(args.url, _submit_payload(args))
    print(f"campaign {accepted['id']} accepted ({args.url}{accepted['location']})")
    if not args.watch:
        return EXIT_OK
    return _watch_campaign(args.url, accepted["id"], quiet=args.quiet)


def _cmd_watch(args: argparse.Namespace) -> int:
    return _watch_campaign(
        args.url, args.campaign, offset=args.offset, quiet=args.quiet
    )


def _explain_rules(codes: Sequence[str]) -> int:
    """``repro lint --explain``: print one rule's documentation card."""
    from .lint import RULES, SYNTAX_RULE
    from .lint.registry import resolve_codes

    resolved: list[str] = []
    for chunk in codes:
        if chunk == SYNTAX_RULE:
            resolved.append(SYNTAX_RULE)
        else:
            resolved.extend(sorted(resolve_codes([chunk]) or ()))
    for index, rule_id in enumerate(dict.fromkeys(resolved)):
        if index:
            print()
        if rule_id == SYNTAX_RULE:
            print(f"{SYNTAX_RULE} syntax-error (error)")
            print()
            print(
                "Reserved for DSL parse failures: the lint front end folds\n"
                "the parser's message into the report at the offending\n"
                "line instead of raising, so one broken file cannot abort\n"
                "a multi-spec run.  No checker function runs under this id."
            )
            continue
        registered = RULES[rule_id]
        print(
            f"{registered.id} {registered.name} "
            f"({registered.severity.value}): {registered.summary}"
        )
        print()
        print(registered.help_text)
        if registered.example:
            print()
            print("Minimal triggering specification:")
            print()
            for line in registered.example.strip().splitlines():
                print(f"    {line}")
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import RENDERERS, lint_all, lint_path, lint_protocol

    if args.explain:
        return _explain_rules(args.explain)
    reports = []
    if args.all:
        reports.extend(lint_all(select=args.select, ignore=args.ignore))
    for name in args.protocol:
        reports.append(
            lint_protocol(name, select=args.select, ignore=args.ignore)
        )
    for path in args.spec_file:
        reports.append(lint_path(path, select=args.select, ignore=args.ignore))
    if not reports:
        raise ValueError(
            "nothing to lint: give spec files, --protocol NAME or --all"
        )
    rendered = RENDERERS[args.format](reports)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"{args.format} report written to {args.output}")
    else:
        print(rendered)
    failing = sum(r.errors for r in reports)
    if args.strict:
        failing += sum(r.warnings for r in reports)
    return EXIT_VIOLATION if failing else EXIT_OK


def _resolve_one_spec(target: str):
    """One spec from a path, registry name or builtin DSL name."""
    from pathlib import Path

    if Path(target).exists():
        return load_protocol(target)
    from .protocols.registry import get_protocol

    try:
        return get_protocol(target)
    except KeyError:
        pass
    from .protocols.dsl import load_builtin

    try:
        return load_builtin(target)
    except KeyError:
        raise ValueError(
            f"unknown spec {target!r}: not a file, a registry protocol "
            "or a builtin DSL spec"
        ) from None


def _cmd_ir(args: argparse.Namespace) -> int:
    import json

    from .ir import canonical_json, lower

    ir = lower(_resolve_one_spec(args.spec))
    if args.fingerprint:
        print(ir.fingerprint())
    elif args.compact:
        print(canonical_json(ir.to_dict()))
    else:
        print(json.dumps(ir.to_dict(), indent=2, sort_keys=True))
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    from .engine import RunJournal, VerificationJob, run_batch
    from .obs import Collector, render_report, use_collector

    jobs: list[VerificationJob] = []
    names: list[str] = []
    for name in args.protocol:
        if name == "all":
            names.extend(protocol_names())
        else:
            names.append(name)
    for name in dict.fromkeys(names):  # dedupe, keep order
        [spec] = resolve_specs(name)  # raises KeyError for unknown names
        jobs.append(
            VerificationJob(
                protocol=name,
                mutant=args.mutant,
                augmented=not args.structural,
                validate_spec=args.mutant is None,
            )
        )
        if args.mutants:
            for mutant in mutants_for(spec):
                jobs.append(
                    VerificationJob(
                        protocol=name,
                        mutant=mutant.mutation.key,
                        augmented=not args.structural,
                    )
                )
    for path in args.spec_file:
        jobs.append(VerificationJob(spec_file=path, augmented=not args.structural))
    if not jobs:
        raise ValueError(
            "nothing to profile: give protocol names, 'all' or --spec-file"
        )

    label = jobs[0].label if len(jobs) == 1 else f"batch-{len(jobs)}"
    collector = Collector(label)
    # Serial, cache-less, in-process: every expansion span lands in
    # this collector instead of a worker's (parallel workers would
    # keep their spans to themselves) and nothing short-circuits the
    # work being measured.
    with use_collector(collector), collector.span("profile", jobs=len(jobs)):
        report = run_batch(
            jobs, workers=1, cache=None, journal=RunJournal(), backend=args.backend
        )

    output = args.output or f"profile-{label}{EXPORT_EXTENSIONS[args.format]}"
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(EXPORTERS[args.format](collector))
    text = render_report(collector, title=f"repro profile -- {label}")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    print(text)
    if args.backend == "kernel":
        print()
        print(_backend_comparison(jobs))
    print()
    print(report.counts_line())
    print(f"{args.format} export written to {output}")
    return report.exit_code


def _backend_comparison(jobs: list) -> str:
    """Interpreter-vs-kernel wall time and visits, side by side.

    Runs each job's verification once per backend in-process (no cache,
    no workers) so the two columns measure the same spec under the same
    options.  Specs the kernel cannot lower show ``n/a`` kernel columns
    instead of silently timing the interpreter fallback twice.
    """
    from .kernel import KernelUnsupportedError, compile_protocol
    from .obs import clock

    rows = []
    for job in jobs:
        spec = job.resolve_spec()
        started = clock.monotonic()
        interp = verify(spec, augmented=job.augmented, validate_spec=False).result
        interp_ms = (clock.monotonic() - started) * 1000.0
        try:
            compile_protocol(spec)
        except KernelUnsupportedError:
            rows.append(
                [job.label, f"{interp_ms:.2f}", "n/a", "-", interp.stats.visits, "n/a"]
            )
            continue
        started = clock.monotonic()
        kernel = verify(
            spec, augmented=job.augmented, validate_spec=False, backend="kernel"
        ).result
        kernel_ms = (clock.monotonic() - started) * 1000.0
        speedup = interp_ms / kernel_ms if kernel_ms > 0 else float("inf")
        rows.append(
            [
                job.label,
                f"{interp_ms:.2f}",
                f"{kernel_ms:.2f}",
                f"{speedup:.1f}x",
                interp.stats.visits,
                kernel.stats.visits,
            ]
        )
    return format_table(
        [
            "protocol",
            "interp ms",
            "kernel ms",
            "speedup",
            "interp visits",
            "kernel visits",
        ],
        rows,
        title="interpreter vs kernel (one in-process run each)",
    )


def _cmd_mutants(args: argparse.Namespace) -> int:
    from .engine import ResultCache, VerificationJob, run_batch

    jobs = []
    for spec in resolve_specs(args.protocol):
        for mutant in mutants_for(spec):
            jobs.append(
                VerificationJob(protocol=spec.name, mutant=mutant.mutation.key)
            )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    report = run_batch(jobs, workers=args.jobs, cache=cache)

    rows = []
    escaped = 0
    errors = 0
    for result in report.results:
        if not result.completed:
            errors += 1
            rows.append([result.job.label, result.verdict, "-", result.error or "-"])
            continue
        payload = result.payload
        assert payload is not None
        if payload["verified"]:
            escaped += 1
        kinds = ",".join(sorted({v["kind"] for v in payload["violations"]})) or "-"
        rows.append(
            [
                result.job.label,
                "KILLED" if not payload["verified"] else "SURVIVED",
                payload["stats"]["visits"],
                kinds,
            ]
        )
    print(
        format_table(
            ["mutant", "verdict", "visits", "violation kinds"],
            rows,
            title="Injected-bug detection by the symbolic verifier",
        )
    )
    if errors:
        print(f"\nERROR: {errors} mutant jobs did not complete")
        return EXIT_ERROR
    if escaped:
        print(f"\nWARNING: {escaped} mutants escaped the verifier")
        return EXIT_VIOLATION
    return EXIT_OK


def _cmd_enumerate(args: argparse.Namespace) -> int:
    [spec] = resolve_specs(args.protocol)
    equivalence = Equivalence.COUNTING if args.counting else Equivalence.STRICT
    guard = None
    if args.deadline is not None:
        from .engine.guard import Budget, Guard

        guard = Guard(Budget(deadline=args.deadline))
    enumerate_fn = enumerate_space
    if args.backend == "kernel":
        from .kernel import KernelUnsupportedError, compile_protocol
        from .kernel import enumerate_space as kernel_enumerate

        try:
            compile_protocol(spec)
        except KernelUnsupportedError:
            pass  # fall back to the interpreter, same verdicts
        else:
            enumerate_fn = kernel_enumerate
    result = enumerate_fn(spec, args.n, equivalence=equivalence, guard=guard)
    if result.partial:
        why = result.exhausted.describe() if result.exhausted else "budget"
        verdict = (
            f"PARTIAL ({why}; {len(result.frontier)} frontier states "
            "unexpanded)"
        )
    else:
        verdict = "no violations" if result.ok else "VIOLATIONS FOUND"
    print(
        f"{spec.name}, n={args.n}, {equivalence.value} equivalence: "
        f"{result.stats.unique_states} states, {result.stats.visits} visits, "
        f"{verdict}"
    )
    if result.violations and result.partial:
        print("  (violations found before exhaustion are definitive)")
    if args.show_states:
        for state in result.states:
            print("  ", state.pretty())
    if result.violations:
        return EXIT_VIOLATION
    return EXIT_ERROR if result.partial else EXIT_OK


def _cmd_crossval(args: argparse.Namespace) -> int:
    status = EXIT_OK
    for spec in resolve_specs(args.protocol):
        result = cross_validate(spec, ns=tuple(range(1, args.max_n + 1)))
        print(result.summary())
        if not result.ok:
            status = EXIT_VIOLATION
    return status


def _cmd_simulate(args: argparse.Namespace) -> int:
    [spec] = resolve_specs(args.protocol)
    if args.mutant:
        spec = get_mutant(spec, args.mutant)
    if args.trace_file:
        trace = load_trace(args.trace_file)
        if trace.processors > args.processors:
            args.processors = trace.processors
    else:
        trace = make_workload(
            args.workload, args.processors, args.length, seed=args.seed
        )
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"trace written to {args.save_trace}")
    system = System(spec, args.processors, num_sets=args.sets, strict=False)
    report = system.run(trace, stop_on_violation=args.stop_on_violation)
    print(f"{spec.name} on {trace.describe()}")
    print(report.summary())
    for violation in report.violations[:5]:
        print("  ", violation)
    return EXIT_OK if report.ok else EXIT_VIOLATION


def _cmd_compare(args: argparse.Namespace) -> int:
    [spec_a] = resolve_specs(args.a)
    [spec_b] = resolve_specs(args.b)
    result_a = explore(spec_a)
    result_b = explore(spec_b)
    print(compare_protocols(result_a, result_b).render())
    return EXIT_OK


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweeps import sweep_table, traffic_sweep

    points = traffic_sweep(
        resolve_specs(args.protocol),
        [args.workload],
        args.processors,
        length=args.length,
        seed=args.seed,
        workers=args.workers,
    )
    print(sweep_table(points, workload=args.workload))
    return EXIT_OK if all(p.violations == 0 for p in points) else EXIT_VIOLATION


def _cmd_fragility(args: argparse.Namespace) -> int:
    for spec in resolve_specs(args.protocol):
        report = criticality_profile(spec, picks=args.picks, jobs=args.jobs)
        print(
            format_table(
                ["state", "op", "broken/judged", "fragility"],
                report.site_rows(),
                title=f"fragility map -- {spec.full_name or spec.name}",
            )
        )
        print(
            f"  {report.attempted} edits, {report.ill_formed} ill-formed, "
            f"{report.survived} survived, {report.broken} broke coherence "
            f"({report.fragility:.0%} fragility)\n"
        )
    return EXIT_OK


def _cmd_fsm(args: argparse.Namespace) -> int:
    status = EXIT_OK
    for spec in resolve_specs(args.protocol):
        problems = check_definition_1(spec)
        if problems:
            status = EXIT_VIOLATION
            print(f"{spec.name}: Definition 1 VIOLATED")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"{spec.name}: cache FSM strongly connected (Definition 1 ok)")
    return status


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Symbolic verification of cache coherence protocols "
        "(Pong & Dubois, SPAA 1993 reproduction)",
        epilog=_EXIT_STATUS_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list protocols, mutations and workloads")

    p = sub.add_parser("verify", help="symbolically verify a protocol")
    p.add_argument(
        "protocol",
        nargs="?",
        default="all",
        help="protocol name or 'all' (ignored with --spec-file)",
    )
    p.add_argument(
        "--spec-file",
        metavar="FILE",
        help="verify a protocol written in the specification language",
    )
    p.add_argument("--structural", action="store_true", help="skip context variables")
    p.add_argument("--no-pruning", action="store_true", help="duplicate-only pruning")
    p.add_argument("--mutant", choices=_MUTANT_CHOICES, help="inject a bug first")
    p.add_argument(
        "--mode",
        choices=("safety", "liveness", "both"),
        default="safety",
        help="what to check: 'safety' (reachability, default) or "
        "'liveness'/'both' (additionally reject starvable requests "
        "with lasso counterexamples; see docs/LIVENESS.md)",
    )
    p.add_argument("--trace", action="store_true", help="print the expansion steps")
    p.add_argument("--dot", metavar="FILE", help="write the diagram as DOT")
    p.add_argument("--json", metavar="FILE", help="write the full result as JSON")
    p.add_argument("--quiet", action="store_true", help="one-line summaries only")
    p.add_argument(
        "--preflight",
        nargs="?",
        const="reject",
        choices=("reject", "annotate"),
        help="statically analyze the spec first: 'reject' (default when the "
        "flag is given) aborts on error-severity findings, 'annotate' "
        "prints them and verifies anyway",
    )

    p = sub.add_parser(
        "batch",
        help="batch-verify many specs in parallel with caching + journal",
        description="Verify many specifications through the batch engine: "
        "a multiprocessing worker pool with per-job timeouts, bounded "
        "retries and crash isolation, a persistent content-addressed "
        "result cache keyed by spec fingerprint, and a structured JSONL "
        "run journal.  Results are journaled and cached incrementally, "
        "so an interrupted run (Ctrl-C exits with status 130 after "
        "flushing a run_aborted journal event) keeps everything finished "
        "so far and can be continued with --resume JOURNAL, which "
        "re-dispatches only unfinished jobs.",
        epilog=_EXIT_STATUS_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--protocols",
        nargs="+",
        default=["all"],
        metavar="NAME",
        help="protocol names, 'all', or 'none' for spec-file-only runs "
        "(default: all)",
    )
    p.add_argument(
        "--mutants",
        action="store_true",
        help="also verify every applicable injected-bug mutant",
    )
    p.add_argument(
        "--spec-file",
        action="append",
        default=[],
        metavar="FILE",
        help="additionally verify a DSL specification (repeatable)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process fallback)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="result cache directory (default: ~/.cache/repro)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.add_argument(
        "--journal", metavar="FILE", help="write the JSONL run journal here"
    )
    p.add_argument(
        "--timeout",
        type=float,
        help="per-job wall-clock budget in seconds (forces worker processes)",
    )
    p.add_argument(
        "--grace",
        type=float,
        help="soft-cancel window for timed-out jobs: seconds granted to "
        "emit a partial result before SIGKILL (default: 1)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="per-job cooperative deadline: an exhausted job stops "
        "cleanly with a partial result instead of timing out",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retry budget for timed-out/crashed jobs (default: 1)",
    )
    p.add_argument(
        "--backoff",
        type=float,
        metavar="SECONDS",
        help="base delay for exponential retry backoff with "
        "deterministic jitter (attempt n waits ~SECONDS*2^(n-2), "
        "capped at 30s); default: retries re-dispatch immediately",
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        metavar="N",
        help="trip a per-spec circuit breaker after N consecutive "
        "crashes/timeouts: further attempts are quarantined "
        "(status QUARANTINED, never cached) until the cooldown "
        "half-opens the breaker; default: no breaker",
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="seconds a tripped breaker stays open before admitting "
        "one half-open probe (default: 30)",
    )
    p.add_argument(
        "--resume",
        metavar="JOURNAL",
        help="continue an interrupted run: replay finished jobs from "
        "this journal (and the cache), re-dispatch only the rest; "
        "appends to the same journal file",
    )
    p.add_argument("--structural", action="store_true", help="skip context variables")
    p.add_argument(
        "--preflight",
        nargs="?",
        const="reject",
        choices=("reject", "annotate"),
        help="lint every spec before dispatch: 'reject' (default when the "
        "flag is given) turns error-severity findings into rejected jobs "
        "that never reach a worker, 'annotate' records findings but "
        "verifies anyway",
    )
    p.add_argument(
        "--backend",
        choices=("interp", "kernel"),
        default="interp",
        help="expansion engine: 'interp' (symbolic interpreter, default) "
        "or 'kernel' (compiled kernel; identical verdicts, part of the "
        "cache key)",
    )
    p.add_argument(
        "--mode",
        choices=("safety", "liveness", "both"),
        default="safety",
        help="what to check: 'safety' (default) or 'liveness'/'both' "
        "(additionally run the starvation analysis; starvable specs "
        "report NOT-LIVE and exit 1; part of the cache key)",
    )

    p = sub.add_parser(
        "lint",
        help="statically analyze specs without running verification",
        description="Run the static protocol analyzer (repro.lint) over "
        "DSL spec files, registry protocols or the whole shipped zoo. "
        "Rules are addressable as PLxxx codes or kebab-case names; see "
        "docs/LINT.md for the catalog.",
    )
    p.add_argument(
        "spec_file",
        nargs="*",
        help="DSL specification files to analyze",
    )
    p.add_argument(
        "--protocol",
        action="append",
        default=[],
        metavar="NAME",
        help="also lint a registry protocol (repeatable)",
    )
    p.add_argument(
        "--all",
        action="store_true",
        help="lint every registry protocol and every builtin DSL spec",
    )
    p.add_argument(
        "--select",
        action="append",
        metavar="RULES",
        help="only run these rules (PLxxx codes or names, comma-separated; "
        "repeatable)",
    )
    p.add_argument(
        "--ignore",
        action="append",
        metavar="RULES",
        help="skip these rules (PLxxx codes or names, comma-separated; "
        "repeatable)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text; 'sarif' emits SARIF 2.1.0)",
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too, not just errors",
    )
    p.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the report here instead of stdout",
    )
    p.add_argument(
        "--explain",
        action="append",
        default=[],
        metavar="RULE",
        help="print one rule's documentation card -- rationale, severity "
        "and a minimal triggering specification -- instead of linting "
        "(PLxxx code or kebab-case name; repeatable)",
    )

    p = sub.add_parser(
        "ir",
        help="work with the guarded-action intermediate representation",
        description="Lower a specification to the canonical guarded-action "
        "IR (repro.ir): an interned, deterministic decision-list form "
        "shared by DSL and registry protocols, with a stable content "
        "fingerprint.  See docs/IR.md for the format.",
    )
    ir_sub = p.add_subparsers(dest="ir_command", required=True)
    p = ir_sub.add_parser(
        "dump", help="print a spec's IR as canonical JSON"
    )
    p.add_argument(
        "spec",
        help="a DSL spec file path, a registry protocol name, or a "
        "builtin DSL spec name",
    )
    p.add_argument(
        "--compact",
        action="store_true",
        help="single-line canonical JSON (the exact fingerprint input)",
    )
    p.add_argument(
        "--fingerprint",
        action="store_true",
        help="print only the SHA-256 content fingerprint",
    )

    p = sub.add_parser(
        "profile",
        help="verify under instrumentation; write a report + trace file",
        description="Run protocols (or DSL specs) through the verification "
        "pipeline with repro.obs instrumentation enabled: spans around "
        "expansion, pruning, witness search and engine phases, plus "
        "visit/prune/cache counters.  Prints a text report and writes "
        "the full trace in the chosen export format (chrome-trace "
        "output loads in Perfetto / chrome://tracing).",
    )
    p.add_argument(
        "protocol",
        nargs="*",
        default=[],
        help="protocol names or 'all'",
    )
    p.add_argument(
        "--spec-file",
        action="append",
        default=[],
        metavar="FILE",
        help="additionally profile a DSL specification (repeatable)",
    )
    p.add_argument("--mutant", choices=_MUTANT_CHOICES, help="inject a bug first")
    p.add_argument(
        "--mutants",
        action="store_true",
        help="also profile every applicable injected-bug mutant",
    )
    p.add_argument("--structural", action="store_true", help="skip context variables")
    p.add_argument(
        "--format",
        choices=sorted(EXPORTERS),
        default="chrome-trace",
        help="trace export format (default: chrome-trace)",
    )
    p.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="trace file path (default: profile-<label> with the "
        "format's conventional extension)",
    )
    p.add_argument(
        "--report",
        metavar="FILE",
        help="also write the text report to this file",
    )
    p.add_argument(
        "--backend",
        choices=("interp", "kernel"),
        default="interp",
        help="expansion engine to profile; 'kernel' additionally prints "
        "an interpreter-vs-kernel wall-time/visits comparison table",
    )

    p = sub.add_parser("mutants", help="verify every injected-bug variant")
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="reuse cached verdicts from this result-cache directory",
    )

    p = sub.add_parser("enumerate", help="explicit Figure 2 state enumeration")
    p.add_argument("protocol")
    p.add_argument("-n", type=int, default=3, help="number of caches")
    p.add_argument("--counting", action="store_true", help="Definition 5 equivalence")
    p.add_argument("--show-states", action="store_true")
    p.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; an exhausted search reports the "
        "reachable prefix as a partial result instead of running away",
    )
    p.add_argument(
        "--backend",
        choices=("interp", "kernel"),
        default="interp",
        help="enumeration engine: 'interp' (default) or the compiled "
        "kernel (identical states/verdicts, ~10x faster at large n)",
    )

    p = sub.add_parser("crossval", help="Theorem 1 cross-validation")
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument("--max-n", type=int, default=4)

    p = sub.add_parser("simulate", help="run the executable multiprocessor")
    p.add_argument("protocol")
    p.add_argument("-w", "--workload", choices=sorted(WORKLOADS), default="hot-block")
    p.add_argument("-p", "--processors", type=int, default=4)
    p.add_argument("-l", "--length", type=int, default=10000)
    p.add_argument("--sets", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mutant", choices=_MUTANT_CHOICES)
    p.add_argument("--stop-on-violation", action="store_true")
    p.add_argument("--trace-file", metavar="FILE", help="replay a saved trace")
    p.add_argument("--save-trace", metavar="FILE", help="save the trace used")

    p = sub.add_parser("compare", help="compare two protocols' diagrams")
    p.add_argument("a")
    p.add_argument("b")

    p = sub.add_parser("fsm", help="Definition 1 checks on the cache FSM")
    p.add_argument("protocol", help="protocol name or 'all'")

    p = sub.add_parser(
        "fragility", help="verify every single-point edit of a protocol"
    )
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument("--picks", type=int, default=2)
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the edit sweep (1 = serial)",
    )

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing of the symbolic vs concrete engines",
        description="Draw seeded well-formed protocol specifications, "
        "verify each with the symbolic expansion (dispatched through the "
        "batch engine) and the exhaustive small-n enumeration, and flag "
        "any verdict or Theorem 1 coverage disagreement.  Disagreements "
        "are auto-shrunk to a minimal specification and persisted to the "
        "regression corpus; --replay re-verifies the stored corpus.",
        epilog=_EXIT_STATUS_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed")
    p.add_argument(
        "--count", type=int, default=20, help="specifications to draw"
    )
    p.add_argument(
        "--max-n",
        type=int,
        default=3,
        help="largest cache count enumerated for completeness/coverage",
    )
    p.add_argument(
        "--soundness-max-n",
        type=int,
        default=5,
        help="largest cache count searched for a rejection witness",
    )
    p.add_argument(
        "--max-visits",
        type=int,
        default=60_000,
        help="visit budget for each symbolic expansion",
    )
    p.add_argument(
        "--concrete-visits",
        type=int,
        default=400_000,
        help="visit budget for each concrete enumeration",
    )
    p.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget per search; exhausted comparisons are "
        "reported as skipped, never as findings",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the symbolic batch (1 = serial)",
    )
    p.add_argument(
        "--corpus",
        metavar="DIR",
        default="tests/corpus",
        help="regression corpus directory (default: tests/corpus)",
    )
    p.add_argument(
        "--no-persist",
        action="store_true",
        help="do not write findings into the corpus",
    )
    p.add_argument(
        "--findings",
        metavar="FILE",
        help="write the deterministic findings document (JSON) here",
    )
    p.add_argument(
        "--journal", metavar="FILE", help="write the run journal here"
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="reuse cached symbolic verdicts from this result cache "
        "(default: no cache, so repeated runs journal identically)",
    )
    p.add_argument(
        "--replay",
        action="store_true",
        help="re-verify every corpus entry instead of fuzzing",
    )
    p.add_argument(
        "--mode",
        choices=("safety", "liveness", "both"),
        default="safety",
        help="verification mode for the symbolic side: liveness modes "
        "additionally hunt starvable requests in generated specs and "
        "replay each lasso through the reaction semantics",
    )
    p.add_argument(
        "--p-stall",
        type=float,
        default=0.0,
        metavar="P",
        help="probability of stalling rules in generated specs (0 "
        "disables; raise it in liveness modes so the generator actually "
        "draws starvable protocols)",
    )

    p = sub.add_parser(
        "serve",
        help="run the verification-as-a-service campaign server",
        description="Start the long-running campaign service (repro.serve): "
        "an asyncio HTTP front end on the batch engine.  POST /campaigns "
        "submits spec names or inline DSL sources (plus mutant matrices) "
        "and returns a campaign id; a scheduler shards campaigns across "
        "a worker pool with priority lanes (high/normal/low) and "
        "per-tenant wall-clock budgets enforced through the engine's "
        "cooperative Guard (exhausted tenants degrade to PARTIAL results, "
        "never starve); GET /campaigns/{id} returns the structured batch "
        "report, /campaigns/{id}/events streams journal events live over "
        "SSE (replayable from a byte offset), /cache/{fingerprint} serves "
        "the shared result cache and /metrics the Prometheus exposition.  "
        "Every campaign is journaled, so a killed server resumes its "
        "unfinished campaigns from the journal on restart.  Full API "
        "contract: docs/SERVICE.md.",
        epilog=_EXIT_STATUS_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8642, help="bind port")
    p.add_argument(
        "--state-dir",
        default="repro-serve",
        metavar="DIR",
        help="campaign state root: journals, reports, inline specs "
        "(default: ./repro-serve)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent campaigns (scheduler worker pool, default: 2)",
    )
    p.add_argument(
        "--job-workers",
        type=int,
        default=1,
        help="worker processes per campaign batch (default: 1, serial)",
    )
    p.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="shared result cache directory (default: ~/.cache/repro)",
    )
    p.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p.add_argument(
        "--tenant",
        action="append",
        default=[],
        metavar="NAME=SECONDS",
        help="wall-clock allotment for one tenant (repeatable); tenants "
        "without one are unlimited",
    )
    p.add_argument(
        "--preflight",
        nargs="?",
        const="reject",
        choices=("reject", "annotate"),
        help="force a lint preflight mode on every campaign",
    )
    p.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admission control: campaigns queued per priority lane "
        "before new submissions get 429 + Retry-After (default: 64)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        metavar="N",
        help="admission control: concurrently executing campaigns "
        "before new submissions get 429 (default: unlimited)",
    )
    p.add_argument(
        "--read-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-connection bound on parsing one request; slow "
        "clients get 408 (default: 10; 0 disables)",
    )
    p.add_argument(
        "--drain-grace",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="graceful drain (SIGTERM/SIGINT): seconds an in-flight "
        "job gets to honour its soft-cancel before SIGKILL "
        "(default: 5)",
    )

    p = sub.add_parser(
        "submit",
        help="submit a campaign to a running campaign server",
        description="POST a campaign to `repro serve` and print its id.  "
        "--watch then streams the journal live and exits with the "
        "campaign's own status, keeping the uniform 0/1/2 contract.",
        epilog=_EXIT_STATUS_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8642")
    p.add_argument(
        "--protocols",
        nargs="+",
        default=["all"],
        metavar="NAME",
        help="protocol names or 'all' (default: all)",
    )
    p.add_argument(
        "--mutants",
        action="store_true",
        help="also verify every applicable injected-bug mutant",
    )
    p.add_argument(
        "--spec-file",
        action="append",
        default=[],
        metavar="FILE",
        help="submit a local DSL spec inline (repeatable; the server "
        "needs no shared filesystem)",
    )
    p.add_argument("--tenant", default="default", help="tenant to bill")
    p.add_argument(
        "--priority",
        choices=("high", "normal", "low"),
        default="normal",
        help="scheduler lane (default: normal)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="per-job cooperative deadline (budget-exhausted jobs "
        "return PARTIAL)",
    )
    p.add_argument("--structural", action="store_true", help="skip context variables")
    p.add_argument(
        "--preflight",
        nargs="?",
        const="reject",
        choices=("reject", "annotate"),
        help="lint every spec before dispatch",
    )
    p.add_argument(
        "--mode",
        choices=("safety", "liveness", "both"),
        default="safety",
        help="verification mode for every job in the campaign",
    )
    p.add_argument(
        "--watch",
        action="store_true",
        help="stream events until done; exit with the campaign status",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-event lines"
    )

    p = sub.add_parser(
        "watch",
        help="stream a campaign's journal events from a campaign server",
        description="Follow GET /campaigns/{id}/events over SSE until the "
        "campaign finishes, printing one line per journal event, then "
        "exit with the campaign's own 0/1/2 status.  Reconnects resume "
        "from the last seen byte offset, so no event is lost or doubled.",
        epilog=_EXIT_STATUS_DOC,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8642")
    p.add_argument("campaign", help="campaign id from `repro submit`")
    p.add_argument(
        "--offset",
        type=int,
        default=0,
        help="journal byte offset to replay from (default: 0, the start)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="only print the final summary"
    )

    p = sub.add_parser("sweep", help="traffic sweep across machine sizes")
    p.add_argument("protocol", help="protocol name or 'all'")
    p.add_argument("-w", "--workload", choices=sorted(WORKLOADS), default="hot-block")
    p.add_argument("-p", "--processors", type=int, nargs="+", default=[2, 4, 8])
    p.add_argument("-l", "--length", type=int, default=8000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1)

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "verify": _cmd_verify,
    "batch": _cmd_batch,
    "lint": _cmd_lint,
    "ir": _cmd_ir,
    "profile": _cmd_profile,
    "mutants": _cmd_mutants,
    "enumerate": _cmd_enumerate,
    "crossval": _cmd_crossval,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "fsm": _cmd_fsm,
    "fragility": _cmd_fragility,
    "sweep": _cmd_sweep,
    "fuzz": _cmd_fuzz,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "watch": _cmd_watch,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status.

    Usage, specification and input errors (unknown protocol names,
    malformed spec files, unreadable traces) exit with status 2 so that
    scripts can tell "the protocol is broken" (1) from "the invocation
    is broken" (2).
    """
    global _last_signal
    args = build_parser().parse_args(argv)
    _last_signal = None
    try:
        return _HANDLERS[args.command](args)
    except KeyboardInterrupt:
        # The batch engine has already flushed a run_aborted journal
        # event by the time the interrupt reaches us (see run_batch).
        # SIGTERM routes through the same path (via the trampoline
        # handler) and reports 143 instead of 130.
        signame = (
            signal.Signals(_last_signal).name
            if _last_signal is not None
            else "SIGINT"
        )
        print(
            f"repro {args.command}: interrupted ({signame}); journaled "
            "results are kept (batch runs continue with --resume)",
            file=sys.stderr,
        )
        return 128 + _last_signal if _last_signal is not None else EXIT_INTERRUPTED
    except (
        KeyError,
        ValueError,
        OSError,
        DslError,
        ProtocolDefinitionError,
    ) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"repro {args.command}: error: {message}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
