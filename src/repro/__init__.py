"""repro -- symbolic verification of cache coherence protocols.

A from-scratch reproduction of Fong Pong and Michel Dubois, "The
Verification of Cache Coherence Protocols", SPAA 1993: composite states
with repetition operators, containment-pruned symbolic state-space
expansion to essential states, data-consistency checking through
context variables, plus the exhaustive-enumeration baselines the paper
compares against and an executable snooping-bus multiprocessor that
runs the same protocol specifications.

Quickstart::

    from repro import verify

    report = verify("illinois")
    print(report.render())

Profiling a verification (see ``docs/OBSERVABILITY.md``)::

    from repro import Collector, use_collector, verify

    collector = Collector("illinois")
    with use_collector(collector):
        verify("illinois")
    print(collector.span_totals())
"""

from .core import (
    CompositeState,
    DataValue,
    ExpansionResult,
    Op,
    ProtocolSpec,
    PruningMode,
    Rep,
    SharingLevel,
    VerificationReport,
    explore,
    verify,
)
from .engine import BatchReport, ResultCache, RunJournal, VerificationJob, run_batch
from .lint import LintError, LintReport, lint_all, lint_spec
from .liveness import LassoWitness, LivenessReport, analyze_liveness, replay_lasso
from .obs import Collector, render_report, use_collector
from .protocols import all_protocols, get_protocol, protocol_names

__version__ = "1.9.0"

__all__ = [
    "BatchReport",
    "Collector",
    "CompositeState",
    "DataValue",
    "ExpansionResult",
    "LassoWitness",
    "LintError",
    "LintReport",
    "LivenessReport",
    "Op",
    "ProtocolSpec",
    "PruningMode",
    "Rep",
    "ResultCache",
    "RunJournal",
    "SharingLevel",
    "VerificationJob",
    "VerificationReport",
    "__version__",
    "all_protocols",
    "analyze_liveness",
    "explore",
    "get_protocol",
    "lint_all",
    "lint_spec",
    "protocol_names",
    "render_report",
    "replay_lasso",
    "run_batch",
    "use_collector",
    "verify",
]
