"""Liveness and deadlock-freedom verification (ROADMAP item 4).

The safety verifier answers "is an erroneous state reachable?"; this
package answers "can a pending request be refused forever?".  It is a
post-pass over a completed symbolic expansion: the essential-state
graph, closed under the ``contains`` covering, is turned into a
product automaton tracking one blocked cache, and every stallable
request is checked for a reachable serving state.  Failures come back
as lasso-shaped witnesses (``stem`` + ``loop``) that replay through
the ordinary reaction semantics.

Wired end to end as ``mode={"safety", "liveness", "both"}`` on
:func:`repro.verify`, verification jobs, batch runs, the campaign
server and the CLI; see ``docs/LIVENESS.md``.
"""

from .analyze import analyze_liveness
from .model import LassoStep, LassoWitness, LivenessReport, retry_label
from .replay import replay_lasso

__all__ = [
    "analyze_liveness",
    "LassoStep",
    "LassoWitness",
    "LivenessReport",
    "retry_label",
    "replay_lasso",
]

#: Verification modes accepted end to end (verify / jobs / batch / CLI).
MODES = ("safety", "liveness", "both")
