"""Starvation analysis over the essential-state graph.

The safety verifier proves that no *reachable* state is erroneous; this
pass proves that no *pending request* can be refused forever.  It runs
as a post-pass over a completed :class:`~repro.core.essential.
ExpansionResult` -- interpreter- or kernel-produced, the decoded result
is identical, which is what gives the two backends liveness parity by
construction.

The model is a product automaton.  A node pairs an essential state
``S`` with the FSM symbol ``q`` of one distinguished cache -- the
*blocked* cache, which issued an operation ``o`` that stalled and keeps
retrying it.  Edges are the global transitions other initiators can
take (closed over the essential set through the ``contains`` covering,
:func:`~repro.core.essential.essential_home`); along an edge the
blocked cache evolves as an observer, ``q -> outcome.observer_for(q)``.
At each node the protocol's reaction table classifies the pending
request:

* **stalling** -- some consistent scenario refuses ``o``;
* **serving** -- some consistent scenario completes ``o``;
* **moot** -- ``o`` is inapplicable from ``q`` or no consistent
  scenario can pose it (the request as issued no longer exists).

A liveness violation is a reachable stalling node from which *no*
serving or moot node is reachable: whatever the other caches do, every
retry stalls, forever.  Because the product graph is finite, every
violation yields a lasso -- a deterministic walk (always the
lexicographically smallest edge) either revisits a node, closing a
**stall cycle**, or reaches a node with no outgoing transition at all,
a **deadlock** whose loop is the retry itself.

Everything is iterated in sorted order (operations in specification
order, states by canonical rendering, symbols alphabetically, edges by
label), so the report is a pure function of the expansion's *graph
content* -- the backends and worklist schedules cannot leak in.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.composite import CompositeState
from ..core.errors import ErrorKind, Violation
from ..core.essential import ExpansionResult, essential_home
from ..core.expansion import SymbolicExpander
from ..core.symbols import Op
from ..obs import active as _active_collector
from .model import LassoStep, LassoWitness, LivenessReport, retry_label

__all__ = ["analyze_liveness"]


@dataclass(frozen=True)
class _Edge:
    """One progress edge of the product graph (blocked cache observing)."""

    label: str
    target: CompositeState
    #: Observer moves of the underlying outcome: sorted (state, next).
    moves: tuple[tuple[str, str], ...]

    def observer_next(self, symbol: str) -> str:
        """Where a blocked cache in *symbol* lands along this edge."""
        for state, nxt in self.moves:
            if state == symbol:
                return nxt
        return symbol


class _Facts:
    """Cached per-state reaction facts over one expansion result."""

    def __init__(self, result: ExpansionResult) -> None:
        self.spec = result.spec
        self.expander = SymbolicExpander(
            result.spec, augmented=result.augmented
        )
        self.essential = result.essential
        self.pruning = result.pruning
        self._base: dict[
            CompositeState,
            tuple[tuple[_Edge, ...], set[tuple[str, Op]], set[tuple[str, Op]]],
        ] = {}
        self._posed: dict[tuple[CompositeState, str, Op], tuple[bool, bool]] = {}

    # ------------------------------------------------------------------
    def _scan(
        self, state: CompositeState
    ) -> tuple[tuple[_Edge, ...], set[tuple[str, Op]], set[tuple[str, Op]]]:
        cached = self._base.get(state)
        if cached is not None:
            return cached
        stalls: set[tuple[str, Op]] = set()
        serves: set[tuple[str, Op]] = set()
        edges: dict[tuple[str, CompositeState, tuple], _Edge] = {}
        for event in self.expander.reaction_events(state):
            cell = (event.initiator, event.op)
            if event.outcome.stalled:
                stalls.add(cell)
                continue  # a stalled step changes nothing: no edge
            serves.add(cell)
            moves = tuple(
                sorted(
                    (obs, reaction.next_state)
                    for obs, reaction in event.outcome.observers.items()
                )
            )
            label = str(event.label)
            for target in event.targets:
                home = essential_home(target, self.essential, self.pruning)
                key = (label, home, moves)
                if key not in edges:
                    edges[key] = _Edge(label, home, moves)
        ordered = tuple(
            sorted(
                edges.values(),
                key=lambda e: (e.label, e.target.pretty(), e.moves),
            )
        )
        facts = (ordered, stalls, serves)
        self._base[state] = facts
        return facts

    def edges(self, state: CompositeState) -> tuple[_Edge, ...]:
        """Outgoing progress edges of *state*, in deterministic order."""
        return self._scan(state)[0]

    def request(
        self, state: CompositeState, symbol: str, op: Op
    ) -> tuple[bool, bool]:
        """``(can_stall, can_serve)`` for a pending ``op`` by *symbol*.

        A request neither stallable nor servable is *moot*: it cannot
        even be posed at this node (operation inapplicable, symbol no
        longer realizable, no consistent scenario).
        """
        _, stalls, serves = self._scan(state)
        cell = (symbol, op)
        if any(label.symbol == symbol for label, _rep in state.classes):
            return cell in stalls, cell in serves
        key = (state, symbol, op)
        cached = self._posed.get(key)
        if cached is not None:
            return cached
        answer = self._offclass_request(state, symbol, op)
        self._posed[key] = answer
        return answer

    def _offclass_request(
        self, state: CompositeState, symbol: str, op: Op
    ) -> tuple[bool, bool]:
        """Stall/serve classification when *symbol* labels no class.

        The blocked cache's symbol can be merged away by covering; it
        is then re-posed against the whole state as environment.  An
        unrealizable symbol (the state admits no such cache and it is
        not the ever-available invalid state) is moot.
        """
        if not self.spec.applicable(symbol, op):
            return False, False
        if symbol != self.spec.invalid:
            _lo, hi = state.symbol_interval(symbol)
            if hi == 0:
                return False, False
        can_stall = can_serve = False
        for ctx in self.expander.observation_contexts(state, symbol):
            if self.spec.react(symbol, op, ctx).stalled:
                can_stall = True
            else:
                can_serve = True
        return can_stall, can_serve


_Node = tuple[CompositeState, str]


def _resolvable(
    facts: _Facts, start: _Node, op: Op
) -> tuple[bool, set[_Node]]:
    """Can the pending request reach a serving (or moot) node?"""
    seen: set[_Node] = {start}
    queue: list[_Node] = [start]
    while queue:
        state, symbol = queue.pop(0)
        can_stall, can_serve = facts.request(state, symbol, op)
        if can_serve or not can_stall:
            # Serving, or moot (neither stall nor serve): resolved.
            return True, seen
        for edge in facts.edges(state):
            node = (edge.target, edge.observer_next(symbol))
            if node not in seen:
                seen.add(node)
                queue.append(node)
    return False, seen


def _extract_lasso(
    facts: _Facts, start: _Node, op: Op
) -> tuple[ErrorKind, list[tuple[_Node, str]], list[tuple[_Node, str]]]:
    """Deterministic walk from *start* until a cycle or a dead node.

    Returns ``(kind, prefix, loop)`` where prefix/loop are
    ``(node, edge-label)`` pairs; the loop's last edge returns to its
    head (for a deadlock, the loop is the retry self-edge).
    """
    path: list[_Node] = [start]
    labels: list[str] = []
    index: dict[_Node, int] = {start: 0}
    while True:
        state, symbol = path[-1]
        edges = facts.edges(state)
        if not edges:
            steps = list(zip(path[:-1], labels))
            loop = [(path[-1], retry_label(op, symbol))]
            return ErrorKind.DEADLOCK, steps, loop
        chosen = min(
            edges,
            key=lambda e: (e.label, e.target.pretty(), e.observer_next(symbol)),
        )
        nxt = (chosen.target, chosen.observer_next(symbol))
        labels.append(chosen.label)
        if nxt in index:
            head = index[nxt]
            steps = list(zip(path, labels))
            return ErrorKind.STALL_CYCLE, steps[:head], steps[head:]
        index[nxt] = len(path)
        path.append(nxt)


def _global_stem(
    result: ExpansionResult, target: CompositeState
) -> list[tuple[CompositeState, str]]:
    """Shortest path of global transitions from the initial cover."""
    start = essential_home(result.initial, result.essential, result.pruning)
    if start == target:
        return []
    adjacency: dict[CompositeState, list[tuple[str, CompositeState]]] = {}
    for t in result.transitions:
        adjacency.setdefault(t.source, []).append((str(t.label), t.target))
    for out in adjacency.values():
        out.sort(key=lambda edge: (edge[0], edge[1].pretty()))
    parent: dict[CompositeState, tuple[CompositeState, str]] = {}
    seen = {start}
    queue = [start]
    while queue:
        state = queue.pop(0)
        for label, succ in adjacency.get(state, ()):
            if succ in seen:
                continue
            seen.add(succ)
            parent[succ] = (state, label)
            if succ == target:
                queue.clear()
                break
            queue.append(succ)
    if target not in parent:
        return []  # disconnected cover (duplicates-mode oddity): no stem
    steps: list[tuple[CompositeState, str]] = []
    cursor = target
    while cursor != start:
        pred, label = parent[cursor]
        steps.append((pred, label))
        cursor = pred
    steps.reverse()
    return steps


def analyze_liveness(result: ExpansionResult) -> LivenessReport:
    """Check every pending request of a completed expansion for progress.

    Returns an unchecked report (``checked=False``) for partial results
    and for expansions stopped at the first safety error: the product
    graph is only sound over the complete essential set.
    """
    if result.partial:
        return LivenessReport(
            checked=False,
            reason="partial expansion: liveness needs the full fixpoint",
        )
    if result.violations and not result.transitions:
        return LivenessReport(
            checked=False,
            reason="expansion stopped at the first error (stop_on_error)",
        )

    coll = _active_collector()
    span = None
    if coll is not None:
        span = coll.span("liveness.check", protocol=result.spec.name)
        span.__enter__()
    try:
        facts = _Facts(result)
        ordered_states = sorted(result.essential, key=lambda s: s.pretty())
        pending = 0
        explored: set[_Node] = set()
        claimed: set[tuple[Op, str]] = set()
        violations: list[Violation] = []
        lassos: list[LassoWitness] = []
        for op in result.spec.operations:
            for state in ordered_states:
                symbols = sorted(
                    {label.symbol for label, _rep in state.classes}
                )
                for symbol in symbols:
                    can_stall, _can_serve = facts.request(state, symbol, op)
                    if not can_stall:
                        continue
                    pending += 1
                    if (op, symbol) in claimed:
                        continue
                    resolvable, seen = _resolvable(facts, (state, symbol), op)
                    explored |= seen
                    if resolvable:
                        continue
                    claimed.add((op, symbol))
                    kind, prefix, loop = _extract_lasso(
                        facts, (state, symbol), op
                    )
                    stem = [
                        LassoStep(s, None, label)
                        for s, label in _global_stem(result, state)
                    ]
                    stem.extend(
                        LassoStep(s, q, label)
                        for (s, q), label in prefix
                    )
                    witness = LassoWitness(
                        op=op,
                        cache=symbol,
                        kind=kind,
                        stem=tuple(stem),
                        loop=tuple(
                            LassoStep(s, q, label) for (s, q), label in loop
                        ),
                    )
                    lassos.append(witness)
                    if kind is ErrorKind.DEADLOCK:
                        detail = (
                            "no transition can serve or unblock it "
                            "(deadlocked retry)"
                        )
                    else:
                        detail = (
                            f"a stall cycle of length {len(loop)} never "
                            "serves it"
                        )
                    violations.append(
                        Violation(
                            kind,
                            f"a cache in {symbol} can be stalled forever "
                            f"on {op.value}: {detail}",
                            state,
                        )
                    )
        report = LivenessReport(
            checked=True,
            pending=pending,
            nodes=len(explored),
            violations=tuple(violations),
            lassos=tuple(lassos),
        )
        if coll is not None:
            coll.count("liveness.pending", pending)
            coll.count("liveness.nodes", len(explored))
            coll.count("liveness.violations", len(violations))
            assert span is not None
            span.set(live=report.live, pending=pending)
        return report
    finally:
        if span is not None:
            span.__exit__(None, None, None)
