"""Independent re-execution of lasso witnesses.

A lasso produced by :func:`repro.liveness.analyze_liveness` is a claim
about the protocol's *reaction semantics*: every edge is a transition
some initiator can really take, the blocked cache really evolves as an
observer along it, the loop really returns to its head, and at every
loop node the pending operation really stalls (and never completes) in
every consistent scenario.  :func:`replay_lasso` re-derives all of that
from the specification alone -- through :class:`~repro.core.expansion.
SymbolicExpander`, not through the analysis that produced the witness
-- so a bug in the product construction cannot silently vouch for
itself.  The regression corpus and the property suite both replay
every pinned/emitted lasso through this function.
"""

from __future__ import annotations

from ..core.essential import ExpansionResult, essential_home
from ..core.expansion import SymbolicExpander
from .model import LassoStep, LassoWitness

__all__ = ["replay_lasso"]


def _progress_edge(
    expander: SymbolicExpander,
    result: ExpansionResult,
    step: LassoStep,
    next_state,
    next_cache: str | None,
) -> str | None:
    """Check one non-retry edge; returns an error message or ``None``."""
    for event in expander.reaction_events(step.state):
        if str(event.label) != step.label or event.outcome.stalled:
            continue
        for target in event.targets:
            home = essential_home(target, result.essential, result.pruning)
            if home != next_state:
                continue
            if step.cache is not None and next_cache is not None:
                observed = event.outcome.observer_for(step.cache).next_state
                if observed != next_cache:
                    continue
            return None
    return (
        f"no reaction of {step.state.pretty()} takes edge {step.label} "
        f"to {next_state.pretty()}"
    )


def replay_lasso(
    result: ExpansionResult, lasso: LassoWitness
) -> tuple[bool, str | None]:
    """Re-execute *lasso* through the reaction semantics.

    Returns ``(ok, reason)``: ``ok`` is True iff every stem and loop
    edge replays, the loop closes on its head with the blocked cache
    back in its starting symbol, and the pending operation stalls --
    and never completes -- at every loop node.
    """
    if not lasso.loop:
        return False, "lasso has an empty loop"
    expander = SymbolicExpander(result.spec, augmented=result.augmented)
    spec = result.spec

    # Stem and loop edges, the loop's last edge wrapping to its head.
    chain = list(lasso.stem) + list(lasso.loop)
    targets = [
        (nxt.state, nxt.cache) for nxt in chain[1:]
    ] + [(lasso.loop[0].state, lasso.loop[0].cache)]
    for step, (next_state, next_cache) in zip(chain, targets):
        if step.label.startswith("retry["):
            if len(lasso.loop) != 1 or step is not lasso.loop[0]:
                return False, "retry self-edge outside a deadlock loop"
            if expander.reaction_events(step.state) and any(
                not e.outcome.stalled
                for e in expander.reaction_events(step.state)
            ):
                return (
                    False,
                    f"deadlock node {step.state.pretty()} has a "
                    "non-stalled transition",
                )
            continue
        error = _progress_edge(expander, result, step, next_state, next_cache)
        if error is not None:
            return False, error

    # Every loop node must refuse the pending operation outright: some
    # scenario stalls it and no scenario completes it.
    for step in lasso.loop:
        cache = step.cache
        if cache is None:
            return False, "loop step without a blocked-cache symbol"
        if not spec.applicable(cache, lasso.op):
            return (
                False,
                f"pending {lasso.op.value} is not applicable from {cache}",
            )
        contexts = expander.observation_contexts(step.state, cache)
        if not contexts:
            return (
                False,
                f"no consistent scenario poses {lasso.pending} at "
                f"{step.state.pretty()}",
            )
        stalled = completed = False
        for ctx in contexts:
            if spec.react(cache, lasso.op, ctx).stalled:
                stalled = True
            else:
                completed = True
        if completed:
            return (
                False,
                f"{lasso.pending} completes at loop node "
                f"{step.state.pretty()}: no starvation",
            )
        if not stalled:
            return (
                False,
                f"{lasso.pending} never stalls at loop node "
                f"{step.state.pretty()}",
            )
    return True, None
