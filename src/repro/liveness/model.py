"""Data model of the liveness verdict: lasso witnesses and the report.

A liveness counterexample is *lasso-shaped*: a finite ``stem`` from the
initial state to a pending request, followed by a finite ``loop`` of
global transitions the rest of the system can repeat forever without
ever serving that request.  Each :class:`LassoStep` tracks both the
global composite state and -- once the request is pending -- the FSM
symbol of the blocked cache, which evolves through observer reactions
while it waits.

Two flavours, mirroring :class:`~repro.core.errors.ErrorKind`:

``stall-cycle``
    The loop has at least one real transition: other caches keep the
    system moving around a cycle in which every retry of the pending
    operation stalls.

``deadlock``
    No transition can change the state at all; the loop degenerates to
    the retry itself (rendered as a ``retry[...]`` self-edge).

Everything here is plain data with deterministic ``to_dict``
renderings; the algorithms live in :mod:`repro.liveness.analyze` and
:mod:`repro.liveness.replay`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.composite import CompositeState
from ..core.errors import ErrorKind, Violation
from ..core.symbols import Op

__all__ = [
    "LassoStep",
    "LassoWitness",
    "LivenessReport",
    "retry_label",
]


def retry_label(op: Op, cache: str) -> str:
    """The label of the implicit stall self-edge of a pending request."""
    return f"retry[{op.value}_{cache.lower()}]"


@dataclass(frozen=True)
class LassoStep:
    """One node of a lasso, plus the edge leaving it.

    ``cache`` is the blocked cache's FSM symbol at this node; ``None``
    on stem steps taken before the request became pending.  ``label``
    is the global-transition label of the edge to the next step (for
    the last loop step: back to the loop head).
    """

    state: CompositeState
    cache: str | None
    label: str

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-able rendering."""
        return {
            "state": self.state.pretty(),
            "cache": self.cache,
            "label": self.label,
        }


@dataclass(frozen=True)
class LassoWitness:
    """A starvation counterexample: pending request, stem and loop.

    The stem starts at the essential cover of the initial state and
    ends at the loop head (``loop[0]``); the loop's last step closes
    the cycle back to the head.  ``op`` and ``cache`` identify the
    starved request: a cache that was in FSM state ``cache`` when its
    ``op`` first stalled.
    """

    op: Op
    cache: str
    kind: ErrorKind
    stem: tuple[LassoStep, ...]
    loop: tuple[LassoStep, ...]

    @property
    def pending(self) -> str:
        """Display name of the starved request, e.g. ``R_invalid``."""
        return f"{self.op.value}_{self.cache.lower()}"

    @property
    def signature(self) -> str:
        """Compact deterministic identity of this lasso.

        Pins the starved request, the flavour and the loop's edge
        labels -- stable across runs and backends (the analysis is a
        pure function of the expansion graph), so regression corpora
        can record it and flag drift.
        """
        loop = ",".join(step.label for step in self.loop)
        return f"{self.pending} {self.kind.value} stem={len(self.stem)} loop=[{loop}]"

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-able rendering."""
        return {
            "op": self.op.value,
            "cache": self.cache,
            "kind": self.kind.value,
            "stem": [step.to_dict() for step in self.stem],
            "loop": [step.to_dict() for step in self.loop],
        }

    def render(self) -> str:
        """Multi-line rendering in the style of safety witnesses."""
        lines = [f"  pending request: {self.pending} ({self.kind.value})"]
        for step in self.stem:
            suffix = f"   [blocked cache: {step.cache}]" if step.cache else ""
            lines.append(f"  {step.state.pretty()}{suffix}")
            lines.append(f"    --{step.label}-->")
        lines.append("  LOOP:")
        for step in self.loop:
            suffix = f"   [blocked cache: {step.cache}]" if step.cache else ""
            lines.append(f"  | {step.state.pretty()}{suffix}")
            lines.append(f"  |   --{step.label}-->")
        lines.append("  '--> back to the loop head; the request never completes")
        return "\n".join(lines)


@dataclass(frozen=True)
class LivenessReport:
    """Outcome of one liveness analysis over a completed expansion.

    ``checked`` is False when the analysis could not run (partial
    expansion, or one stopped at the first safety error): liveness
    needs the full fixpoint, because the product graph is closed over
    the *complete* essential set.  An unchecked report carries the
    ``reason`` and no verdict.
    """

    checked: bool
    reason: str | None = None
    #: Pending product nodes examined (state, cache, op triples that
    #: can stall in at least one scenario).
    pending: int = 0
    #: Distinct product nodes explored across all reachability searches.
    nodes: int = 0
    violations: tuple[Violation, ...] = ()
    lassos: tuple[LassoWitness, ...] = field(default_factory=tuple)

    @property
    def live(self) -> bool:
        """True iff the analysis ran and found no starvable request."""
        return self.checked and not self.violations

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON-able rendering (see ``result_to_dict``)."""
        return {
            "checked": self.checked,
            "reason": self.reason,
            "live": self.live,
            "pending": self.pending,
            "nodes": self.nodes,
            "violations": [
                {
                    "kind": v.kind.value,
                    "message": v.message,
                    "state": v.state.pretty() if v.state is not None else None,
                }
                for v in self.violations
            ],
            "lassos": [lasso.to_dict() for lasso in self.lassos],
        }

    def summary(self) -> str:
        """One-line summary for reports and logs."""
        if not self.checked:
            return f"liveness: not checked ({self.reason})"
        if self.live:
            return (
                f"liveness: LIVE -- every pending request can be served "
                f"({self.pending} pending nodes over {self.nodes} product "
                "nodes)"
            )
        return (
            f"liveness: NOT LIVE -- {len(self.violations)} starvable "
            f"requests ({self.pending} pending nodes over {self.nodes} "
            "product nodes)"
        )
