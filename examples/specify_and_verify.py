#!/usr/bin/env python3
"""The protocol specification language (paper Section 5's proposal).

The paper's conclusion calls for "a formal specification language
capable of describing both the protocol behavior and the processes
implementing it ... [to] reduce the possibility of errors".  This
example exercises exactly that workflow:

1. load the Illinois protocol from its textual specification and show
   it produces *the same five essential states* as the hand-written
   Python specification;
2. load a Firefly-style write-broadcast specification, verify it and
   run it on the executable multiprocessor;
3. load a deliberately buggy MESI specification and watch the verifier
   reject it with a counterexample -- a transcription error caught
   before implementation.

Run:  python examples/specify_and_verify.py   (from the repo root)
"""

from pathlib import Path

from repro import verify
from repro.core.essential import explore
from repro.protocols import get_protocol
from repro.protocols.dsl import load_builtin, load_protocol
from repro.simulator import System, make_workload

SPEC_DIR = Path(__file__).parent / "specs"


def main() -> None:
    # 1. The DSL and the Python specification agree exactly.
    dsl_illinois = load_builtin("illinois")
    dsl_result = explore(dsl_illinois)
    py_result = explore(get_protocol("illinois"))
    dsl_states = {s.pretty() for s in dsl_result.essential}
    py_states = {s.pretty() for s in py_result.essential}
    assert dsl_states == py_states
    print("DSL Illinois == Python Illinois:")
    for state in sorted(dsl_states):
        print("   ", state)

    # 2. A write-broadcast protocol from a spec file, verified and run.
    firefly_like = load_protocol(SPEC_DIR / "firefly_like.proto")
    report = verify(firefly_like, validate_spec=False)
    print(f"\n{report}")
    system = System(firefly_like, 4)
    sim = system.run(make_workload("producer-consumer", 4, 5000, seed=9))
    print(f"simulated: {sim.summary()}")
    assert report.ok and sim.ok

    # 3. A buggy spec is rejected before any hardware exists.
    broken = load_protocol(SPEC_DIR / "broken_mesi.proto")
    broken_report = verify(broken, validate_spec=False)
    print(f"\n{broken_report}")
    assert not broken_report.ok
    print("\nFirst counterexample for the buggy specification:")
    print(broken_report.witnesses[0].render())


if __name__ == "__main__":
    main()
