#!/usr/bin/env python3
"""Verify the whole Archibald & Baer protocol zoo.

The paper's companion tech report applies the methodology to every
protocol of the Archibald & Baer survey; this example regenerates that
table -- essential states, state visits and verdict per protocol -- and
then uses the global diagrams to show similarities and disparities
between protocol families (the paper's Section 5 claim).

Run:  python examples/verify_protocol_zoo.py
"""

from repro import all_protocols
from repro.analysis.compare import compare_protocols
from repro.analysis.reporting import format_table
from repro.core.essential import explore


def main() -> None:
    results = {}
    rows = []
    for spec in all_protocols():
        result = explore(spec)
        results[spec.name] = result
        rows.append(
            [
                spec.name,
                "sharing" if spec.uses_sharing_detection else "null",
                len(spec.states),
                len(result.essential),
                result.stats.visits,
                len(result.transitions),
                "VERIFIED" if result.ok else "FAILED",
            ]
        )
    print(
        format_table(
            ["protocol", "F", "|Q|", "essential", "visits", "edges", "verdict"],
            rows,
            title="Symbolic verification of the protocol zoo",
        )
    )

    print("\nEvery global state space collapses to a handful of essential")
    print("states, independent of the number of caches in the machine.\n")

    # Similarities and disparities (Section 5).
    print("=== MSI vs Synapse (two three-state invalidate protocols) ===")
    print(compare_protocols(results["msi"], results["synapse"]).render())
    print()
    print("=== Illinois vs Firefly (invalidate vs update) ===")
    print(compare_protocols(results["illinois"], results["firefly"]).render())
    print()
    print("=== Dragon vs MOESI (five-state update vs invalidate) ===")
    print(compare_protocols(results["dragon"], results["moesi"]).render())


if __name__ == "__main__":
    main()
