#!/usr/bin/env python3
"""Verify the whole Archibald & Baer protocol zoo -- through the engine.

The paper's companion tech report applies the methodology to every
protocol of the Archibald & Baer survey; this example regenerates that
table -- essential states, state visits and verdict per protocol --
using the batch-verification engine (``repro.engine``): every protocol
is a :class:`VerificationJob`, the run is journaled, and repeated runs
replay from the persistent result cache instead of re-verifying.  It
then uses the global diagrams to show similarities and disparities
between protocol families (the paper's Section 5 claim).

Run:  python examples/verify_protocol_zoo.py
      REPRO_ZOO_JOBS=4 python examples/verify_protocol_zoo.py   # parallel
"""

import os

from repro import protocol_names
from repro.analysis.compare import compare_protocols
from repro.analysis.reporting import format_table
from repro.core.essential import explore
from repro.engine import VerificationJob, run_batch
from repro.protocols.registry import get_protocol


def main() -> None:
    jobs = [
        VerificationJob(protocol=name, validate_spec=True)
        for name in protocol_names()
    ]
    report = run_batch(jobs, workers=int(os.environ.get("REPRO_ZOO_JOBS", "1")))

    rows = []
    for result in report.results:
        spec = get_protocol(result.job.protocol)
        payload = result.payload
        assert payload is not None, result.error
        rows.append(
            [
                spec.name,
                "sharing" if spec.uses_sharing_detection else "null",
                len(spec.states),
                len(payload["essential_states"]),
                payload["stats"]["visits"],
                len(payload["transitions"]),
                "VERIFIED" if payload["verified"] else "FAILED",
            ]
        )
    print(
        format_table(
            ["protocol", "F", "|Q|", "essential", "visits", "edges", "verdict"],
            rows,
            title="Symbolic verification of the protocol zoo",
        )
    )
    print(f"\n({report.counts_line()})")

    print("\nEvery global state space collapses to a handful of essential")
    print("states, independent of the number of caches in the machine.\n")

    # Similarities and disparities (Section 5) -- these need the full
    # in-memory expansion results, which are milliseconds to recompute.
    results = {
        name: explore(get_protocol(name))
        for name in ("msi", "synapse", "illinois", "firefly", "dragon", "moesi")
    }
    print("=== MSI vs Synapse (two three-state invalidate protocols) ===")
    print(compare_protocols(results["msi"], results["synapse"]).render())
    print()
    print("=== Illinois vs Firefly (invalidate vs update) ===")
    print(compare_protocols(results["illinois"], results["firefly"]).render())
    print()
    print("=== Dragon vs MOESI (five-state update vs invalidate) ===")
    print(compare_protocols(results["dragon"], results["moesi"]).render())


if __name__ == "__main__":
    main()
