#!/usr/bin/env python3
"""Design your own protocol and verify it -- the downstream-user story.

We specify a brand-new (and deliberately naive) protocol with the
public API: a *write-through-always* design with two states, where
every write goes to memory and remote copies are updated in place.
Then we let the verifier loose on it, twice:

1. the correct formulation verifies;
2. a careless variant ("remote copies keep their data on writes,
   they'll notice eventually") is rejected with a counterexample --
   before a single line of RTL exists.

Run:  python examples/custom_protocol.py
"""

from repro import verify
from repro.core.protocol import ProtocolSpec
from repro.core.reactions import Ctx, MEMORY, ObserverReaction, Outcome
from repro.core.symbols import Op

INVALID = "Invalid"
VALID = "Valid"


class WriteThroughUpdate(ProtocolSpec):
    """Two-state write-through protocol with update broadcast.

    Every write is written through to memory and broadcast to all other
    copies; reads miss straight to memory.  Simple, correct and
    bus-hungry -- the 1980s baseline every snooping protocol improved
    on.
    """

    name = "wtu"
    full_name = "Write-Through-Update (example)"
    states = (INVALID, VALID)
    invalid = INVALID
    uses_sharing_detection = False
    error_patterns = ()  # any combination of Valid copies is legal

    def react(self, state: str, op: Op, ctx: Ctx) -> Outcome:
        if op is Op.REPLACE:
            return Outcome(INVALID)  # copies are never dirty: just drop
        if op is Op.READ:
            if state == VALID:
                return Outcome(VALID)
            return Outcome(VALID, load_from=MEMORY)
        # Write: through to memory, broadcast update to every copy.
        outcome_kwargs = dict(
            observers={VALID: ObserverReaction(VALID, updated=True)},
            write_through=True,
        )
        if state == VALID:
            return Outcome(VALID, **outcome_kwargs)
        return Outcome(VALID, load_from=MEMORY, **outcome_kwargs)


class LazyWriteThrough(WriteThroughUpdate):
    """The careless variant: forgets to update the remote copies."""

    name = "wtu-lazy"
    full_name = "Write-Through without update broadcast (buggy example)"

    def react(self, state: str, op: Op, ctx: Ctx) -> Outcome:
        outcome = super().react(state, op, ctx)
        if op is Op.WRITE:
            return Outcome(
                outcome.next_state,
                load_from=outcome.load_from,
                observers={},  # remote copies silently go stale
                write_through=True,
            )
        return outcome


def main() -> None:
    print("=== Correct write-through-update protocol ===")
    good = verify(WriteThroughUpdate())
    print(good.render())
    assert good.ok

    print("\n=== Careless variant ===")
    bad = verify(LazyWriteThrough())
    print(bad.render(diagram=False))
    assert not bad.ok


if __name__ == "__main__":
    main()
