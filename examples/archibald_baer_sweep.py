#!/usr/bin/env python3
"""A mini Archibald & Baer evaluation on the simulation substrate.

The paper's reference [1] compares coherence protocols by simulating a
multiprocessor and measuring the bus traffic each design generates as
the machine scales.  This example reruns that comparison with our
substrate: the protocol zoo × sharing-heavy workloads × machine sizes
from 2 to 16 processors, tabulating hit rates and per-access bus
traffic, and summarizing the scaling trend per protocol family.

Every data point is simultaneously an end-to-end validation run: the
golden-value oracle checks every load, so the sweep would fail loudly
if any verified protocol misbehaved.

Run:  python examples/archibald_baer_sweep.py
"""

from repro.analysis.sweeps import metric_series, sweep_table, traffic_sweep
from repro.protocols.registry import get_protocol

PROTOCOLS = ["write-once", "synapse", "berkeley", "illinois", "firefly", "dragon"]
WORKLOADS = ["hot-block", "migratory", "producer-consumer"]
SIZES = [2, 4, 8, 16]


def main() -> None:
    points = traffic_sweep(
        [get_protocol(name) for name in PROTOCOLS],
        WORKLOADS,
        SIZES,
        length=8000,
        seed=1234,
    )
    assert all(p.violations == 0 for p in points)

    for workload in WORKLOADS:
        print(sweep_table(points, workload=workload))
        print()

    print("bus transactions per access vs machine size (hot-block):")
    series = metric_series(points, "bus_per_access", workload="hot-block")
    for protocol in PROTOCOLS:
        line = "  ".join(f"{n:2d}p:{v:.3f}" for n, v in series[protocol])
        print(f"  {protocol:11s} {line}")

    print()
    print("What the A&B comparison shows on our substrate:")
    print(" * synapse pays the most bus traffic under migratory sharing")
    print("   (no cache-to-cache transfer: every ownership change goes")
    print("   through memory twice);")
    print(" * the update protocols (firefly, dragon) keep hit rates high")
    print("   under producer-consumer sharing -- consumers are updated in")
    print("   place instead of being invalidated and missing;")
    print(" * the invalidate protocols generate less bus traffic when")
    print("   sharing is migratory (one invalidation per hand-off beats")
    print("   broadcasting every store).")


if __name__ == "__main__":
    main()
