#!/usr/bin/env python3
"""Catch a protocol bug three ways: symbolically, concretely, live.

We inject a classic design error into the Illinois protocol -- writes no
longer invalidate remote copies -- and then:

1. the **symbolic verifier** rejects the protocol instantly, with a
   counterexample path from the all-invalid initial state;
2. the **exhaustive enumeration** (Figure 2 baseline, n = 3) confirms
   the erroneous state is concretely reachable;
3. the **executable multiprocessor** eventually reads stale data under
   a random workload -- but only after hundreds of accesses, and only
   if the workload shares data at all: the incompleteness of testing
   the paper's introduction warns about.

Run:  python examples/catch_a_bug.py
"""

from repro import verify
from repro.enumeration.exhaustive import enumerate_space
from repro.protocols.illinois import IllinoisProtocol
from repro.protocols.mutations import get_mutant
from repro.simulator import System, make_workload


def main() -> None:
    mutant = get_mutant(IllinoisProtocol(), "drop-invalidation")
    print(f"Injected bug: {mutant.full_name}\n")

    # 1. Symbolic verification: immediate, exhaustive, with witness.
    report = verify(mutant, validate_spec=False)
    assert not report.ok
    print("=== 1. Symbolic verifier ===")
    print(
        f"verdict: FAILED after {report.result.stats.visits} state visits "
        f"({report.result.stats.elapsed * 1000:.1f} ms)"
    )
    print("first counterexample:")
    print(report.witnesses[0].render())

    # 2. Concrete enumeration agrees.
    print("\n=== 2. Exhaustive enumeration (n = 3) ===")
    concrete = enumerate_space(mutant, 3)
    print(
        f"verdict: {'ok' if concrete.ok else 'FAILED'} after "
        f"{concrete.stats.visits} state visits"
    )
    print(f"example erroneous concrete state: {concrete.erroneous[0]}")

    # 3. Random testing: detection is probabilistic and late.
    print("\n=== 3. Random simulation ===")
    for workload in ("hot-block", "uniform"):
        system = System(mutant, 4, num_sets=4, strict=False)
        result = system.run(make_workload(workload, 4, 50_000, seed=1))
        where = (
            f"first stale read at access #{result.first_violation}"
            if not result.ok
            else "bug NOT detected in 50,000 accesses"
        )
        print(f"{workload:>12s}: {where}")

    print(
        "\nThe verifier needs milliseconds and no luck; "
        "testing needs sharing-heavy traffic and patience."
    )


if __name__ == "__main__":
    main()
