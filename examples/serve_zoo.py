#!/usr/bin/env python3
"""Verify the protocol zoo through the campaign service -- over HTTP.

The previous examples drive the batch engine directly; this one drives
it the way a remote client would, through ``repro.serve``: start a
campaign service on a background thread, ``POST /campaigns`` the whole
zoo, tail the live SSE event stream, and fetch the structured report.
Submitting the identical campaign a second time shows the service's
shared artifact store at work -- every job is answered from the result
cache, zero re-verifications.

Run:  python examples/serve_zoo.py
      REPRO_SERVE_PROTOCOLS=msi,illinois python examples/serve_zoo.py
"""

import os
import tempfile
from pathlib import Path

from repro.engine import ResultCache
from repro.serve import ServeApp, ServerThread, client


def main() -> None:
    protocols = [
        name.strip()
        for name in os.environ.get("REPRO_SERVE_PROTOCOLS", "all").split(",")
        if name.strip()
    ]
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as scratch:
        root = Path(scratch)
        app = ServeApp(root / "state", cache=ResultCache(root / "cache"))
        with ServerThread(app) as server:
            print(f"campaign service listening on {server.base_url}")
            accepted = client.submit(server.base_url, {"protocols": protocols})
            print(f"submitted campaign {accepted['id']}; streaming events:")

            def show(event: client.SseEvent) -> None:
                record = event.json()
                if record["event"] == "job_finish":
                    cached = " (cache)" if record.get("cached") else ""
                    print(f"  {record['job']:<24} {record['status']}{cached}")

            final = client.watch(server.base_url, accepted["id"], on_event=show)
            counts = final["report"]["counts"]
            print(
                f"campaign {accepted['id']}: {counts['jobs']} jobs, "
                f"{counts['verified']} verified, "
                f"{counts['violations']} violations "
                f"(exit {final['exit_code']})"
            )

            # Resubmit the identical campaign: the shared result cache
            # answers every job without a single re-verification.
            again = client.submit(server.base_url, {"protocols": protocols})
            warm = client.watch(server.base_url, again["id"])
            hits = warm["report"]["counts"]["cache_hits"]
            print(
                f"campaign {again['id']} (identical resubmission): "
                f"{hits}/{counts['jobs']} jobs answered from cache"
            )


if __name__ == "__main__":
    main()
