#!/usr/bin/env python3
"""Where is a coherence protocol load-bearing?  A fragility map.

Because verification is cheap (milliseconds per run -- the paper's
complexity result), we can afford to verify *hundreds of variants* of a
protocol: every single-point edit of every transition, systematically.
The result is a designer's fragility map: which (state, operation)
sites tolerate edits (redundancy, benign freedom) and which break
coherence the moment they are touched.

This is the kind of tooling the paper's conclusion envisions when it
argues the drastic complexity reduction "lets us contemplate efficient
verification of much more complex protocols": the verifier becomes an
interactive design instrument rather than a one-off certification.

The sweep runs on the batch-verification engine
(:mod:`repro.engine`): every single-point edit becomes one crash-
isolated verification job, so set ``REPRO_FRAGILITY_JOBS`` to fan the
sweep out over worker processes.

Run:  python examples/fragility_map.py
      REPRO_FRAGILITY_JOBS=4 python examples/fragility_map.py   # parallel
"""

import os

from repro.analysis.reporting import format_table
from repro.protocols.perturb import criticality_profile
from repro.protocols.registry import get_protocol

PROTOCOLS = ("msi", "illinois", "firefly")


def main() -> None:
    workers = int(os.environ.get("REPRO_FRAGILITY_JOBS", "1"))
    summary_rows = []
    for name in PROTOCOLS:
        spec = get_protocol(name)
        report = criticality_profile(spec, picks=2, jobs=workers)
        print(
            format_table(
                ["state", "op", "broken/judged", "fragility"],
                report.site_rows(),
                title=f"fragility map -- {spec.full_name}",
            )
        )
        print(
            f"  {report.attempted} edits attempted, {report.ill_formed} "
            f"ill-formed, {report.survived} survived, {report.broken} broke "
            f"coherence ({report.fragility:.0%} fragility)\n"
        )
        summary_rows.append(
            [name, report.attempted, report.broken, f"{report.fragility:.0%}"]
        )
    print(
        format_table(
            ["protocol", "edits", "coherence-breaking", "fragility"],
            summary_rows,
            title="summary",
        )
    )
    print()
    print("Reading the maps: miss handling (Invalid R/W) and the write-")
    print("to-shared site (the invalidation/broadcast point) are the load-")
    print("bearing parts of every protocol; hits and clean replacements")
    print("tolerate edits.  Each 'broken' cell comes with counterexample")
    print("paths if you drill in with verify().")


if __name__ == "__main__":
    main()
