#!/usr/bin/env python3
"""The state-space explosion, measured (paper Section 3.1 vs 3.2).

Enumerates the Illinois global state space explicitly for growing cache
counts -- under strict equivalence and under the Definition 5 counting
equivalence -- and compares against the paper's ``m^n`` / ``n·k·m^n``
bounds and against the symbolic expansion, whose cost is a constant
independent of ``n``.

Run:  python examples/enumeration_vs_symbolic.py
"""

from repro.analysis.complexity import (
    fit_exponential_growth,
    max_states,
    visit_lower_bound,
)
from repro.analysis.reporting import format_table
from repro.core.essential import explore
from repro.enumeration.exhaustive import Equivalence, enumerate_space
from repro.protocols.illinois import IllinoisProtocol


def main() -> None:
    spec = IllinoisProtocol()
    m = len(spec.states)
    k = len(spec.operations)
    symbolic = explore(spec)

    ns = list(range(1, 8))
    rows = []
    strict_visits = []
    for n in ns:
        strict = enumerate_space(spec, n)
        counting = enumerate_space(spec, n, equivalence=Equivalence.COUNTING)
        strict_visits.append(strict.stats.visits)
        rows.append(
            [
                n,
                max_states(m, n),
                visit_lower_bound(n, k, m),
                strict.stats.unique_states,
                strict.stats.visits,
                counting.stats.unique_states,
                counting.stats.visits,
                len(symbolic.essential),
                symbolic.stats.visits,
            ]
        )
    print(
        format_table(
            [
                "n",
                "m^n",
                "n*k*m^n",
                "strict states",
                "strict visits",
                "counting states",
                "counting visits",
                "symbolic states",
                "symbolic visits",
            ],
            rows,
            title=f"Illinois state-space growth (m={m}, k={k})",
        )
    )

    fit = fit_exponential_growth(ns, strict_visits)
    print(
        f"\nstrict-enumeration visits grow like "
        f"{fit.prefactor:.2f} * {fit.base:.2f}^n  (R^2 = {fit.r_squared:.3f})"
    )
    print(
        f"symbolic expansion: {symbolic.stats.visits} visits, for ANY "
        f"number of caches -- the paper's central claim."
    )


if __name__ == "__main__":
    main()
