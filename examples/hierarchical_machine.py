#!/usr/bin/env python3
"""A hierarchical (clustered) multiprocessor -- Section 5's third target.

The paper's conclusion points at "protocols for hierarchically
organized machines", and its reference [9] verifies one (the Encore
Gigamax: clusters of processors, per-cluster L2 caches, a global bus).
This example runs that machine shape on our substrate:

* the *same* verified protocol (Illinois/MESI) operates at both levels:
  L1s snoop the cluster bus with the L2 as cluster memory; L2s snoop
  the global bus against real memory;
* inclusion is maintained (an L2 eviction back-invalidates its
  cluster), global snoops propagate into clusters, and the golden-value
  oracle checks every load;
* locality is visible in the statistics: cluster-hits absorb misses
  that never reach the global bus.

Run:  python examples/hierarchical_machine.py
"""

from repro.analysis.reporting import format_table
from repro.protocols.registry import get_protocol
from repro.simulator.hierarchy import HierarchicalSystem
from repro.simulator.workloads import make_workload

CLUSTERS = 4
L1_PER_CLUSTER = 4
LENGTH = 30_000


def main() -> None:
    rows = []
    for workload in ("hot-block", "migratory", "producer-consumer", "uniform"):
        hs = HierarchicalSystem(
            get_protocol("illinois"),
            CLUSTERS,
            L1_PER_CLUSTER,
            l1_sets=4,
            l2_sets=16,
            l2_assoc=2,
        )
        trace = make_workload(workload, hs.n_processors, LENGTH, seed=99)
        violations, _ = hs.run(trace)
        assert violations == 0, "a verified protocol must stay coherent"
        problems = hs.audit()
        assert not problems, problems
        s = hs.stats
        rows.append(
            [
                workload,
                f"{s.l1_hits / s.accesses:.1%}",
                f"{s.cluster_hits / s.accesses:.1%}",
                f"{s.global_misses / s.accesses:.1%}",
                s.global_transactions,
                s.back_invalidations,
                s.l2_evictions,
            ]
        )
    print(
        format_table(
            [
                "workload",
                "L1 hits",
                "cluster hits",
                "global misses",
                "global bus txns",
                "back-invalidations",
                "L2 evictions",
            ],
            rows,
            title=(
                f"Illinois/MESI on a {CLUSTERS}x{L1_PER_CLUSTER} hierarchical "
                f"machine ({LENGTH} accesses per workload)"
            ),
        )
    )
    print()
    print("The cluster level filters traffic: misses satisfied inside a")
    print("cluster (cluster hits) never appear on the global bus, which is")
    print("how hierarchical machines scale past a single snooping bus.")
    print("Every run passed the golden-value oracle and the inclusion /")
    print("state-compatibility audits.")


if __name__ == "__main__":
    main()
