#!/usr/bin/env python3
"""Drive the executable multiprocessor across protocols and workloads.

A miniature Archibald & Baer-style evaluation on the simulation
substrate: run the same workloads under every protocol and compare the
coherence traffic each design generates (invalidations vs update
broadcasts vs write-throughs).  Every run is checked by the golden-value
oracle -- all protocols here are verified, so no violations occur.

Run:  python examples/simulate_multiprocessor.py
"""

from repro import all_protocols
from repro.analysis.reporting import format_table
from repro.simulator import System, make_workload

PROCESSORS = 8
LENGTH = 20_000


def main() -> None:
    for workload in ("hot-block", "migratory", "producer-consumer"):
        trace = make_workload(workload, PROCESSORS, LENGTH, seed=42)
        rows = []
        for spec in all_protocols():
            system = System(spec, PROCESSORS, num_sets=8)
            report = system.run(trace)
            assert report.ok, f"{spec.name} violated coherence?!"
            bus = report.bus
            rows.append(
                [
                    spec.name,
                    f"{report.stats.hits / report.stats.accesses:.1%}",
                    bus.transactions,
                    bus.invalidations,
                    bus.updates,
                    bus.writethroughs,
                    bus.writebacks,
                    bus.cache_to_cache,
                ]
            )
        print(
            format_table(
                [
                    "protocol",
                    "hit rate",
                    "bus txns",
                    "invalidations",
                    "updates",
                    "write-thru",
                    "write-backs",
                    "c2c supplies",
                ],
                rows,
                title=f"workload: {workload} "
                f"({PROCESSORS} processors, {LENGTH} accesses)",
            )
        )
        print()

    print("Observations to look for:")
    print(" * update protocols (firefly, dragon) trade invalidations for")
    print("   update/write-through traffic and keep hit rates high;")
    print(" * ownership protocols (berkeley, dragon, moesi) avoid memory")
    print("   writes by supplying cache-to-cache;")
    print(" * synapse, lacking cache-to-cache transfer, pays double for")
    print("   migratory sharing.")


if __name__ == "__main__":
    main()
