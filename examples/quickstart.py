#!/usr/bin/env python3
"""Quickstart: verify the Illinois protocol (the paper's Section 4).

Runs the symbolic expansion with context variables, prints the verdict,
the five essential states, the global transition diagram of Figure 4
and the sharing/cdata/mdata table -- everything the paper reports for
its running example, regenerated in a few milliseconds.

Run:  python examples/quickstart.py
"""

from repro import verify
from repro.analysis.reporting import figure4_table
from repro.core.graph import to_dot


def main() -> None:
    report = verify("illinois")

    # Full report: verdict, essential states, ASCII transition diagram.
    print(report.render())

    # The table printed under Figure 4 in the paper.
    print(figure4_table(report.result))

    # A DOT rendering, ready for `dot -Tpng`.
    print("\nGraphviz version of Figure 4:\n")
    print(to_dot(report.result))

    assert report.ok, "the Illinois protocol must verify!"
    assert len(report.result.essential) == 5


if __name__ == "__main__":
    main()
