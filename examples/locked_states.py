#!/usr/bin/env python3
"""Protocols with locked states -- the paper's Section 5 extension.

The paper closes by noting the methodology's reduced complexity makes
verification of "protocols with locked states" practical.  This example
does exactly that with the shipped ``lock-msi`` protocol, which extends
MSI with a pinning ``Locked`` state and ``LOCK``/``UNLOCK`` operations:

1. symbolic verification proves mutual exclusion (at most one Locked
   copy ever) *and* data consistency, for any number of caches;
2. the executable multiprocessor demonstrates the blocking behaviour
   concretely: contending lock acquisitions stall until the release;
3. a mutated variant whose LOCK forgets to invalidate the sharers is
   rejected with a counterexample.

Run:  python examples/locked_states.py
"""

from repro import verify
from repro.core.graph import ascii_diagram
from repro.protocols.lock_msi import LockMsiProtocol
from repro.protocols.mutations import get_mutant
from repro.simulator import System, locking


def main() -> None:
    spec = LockMsiProtocol()

    # 1. Symbolic verification with the extended operation alphabet.
    report = verify(spec)
    assert report.ok
    print(ascii_diagram(report.result))
    print()
    for state in report.result.essential:
        lo, hi = state.symbol_interval("Locked")
        assert hi is None or hi <= 1
    print("mutual exclusion holds in every reachable global state;")
    print(f"verified in {report.result.stats.visits} state visits.\n")

    # 2. Concrete blocking behaviour.
    system = System(spec, 2)
    assert system.lock(0, 0)
    print("P0 acquired the lock on block 0")
    print(f"P1 lock attempt succeeds? {system.lock(1, 0)}")
    print(f"P1 read attempt returns:  {system.read(1, 0)} (None = stalled)")
    system.write(0, 0)
    system.unlock(0, 0)
    print("P0 wrote and released")
    print(f"P1 lock attempt now:      {system.lock(1, 0)}")
    print(f"P1 state for block 0:     {system.caches[1].state_of(0)}\n")

    # A contended workload, fully checked by the golden-value oracle.
    stress = System(spec, 8, num_sets=4)
    sim = stress.run(locking(8, 20_000, seed=21))
    assert sim.ok
    print(f"locking workload: {sim.summary()}")
    print(f"lock contention stalls on the bus: {sim.bus.stalls}\n")

    # 3. A broken locking protocol is caught symbolically.
    buggy = get_mutant(spec, "drop-invalidation")
    buggy_report = verify(buggy, validate_spec=False)
    assert not buggy_report.ok
    print(f"{buggy.full_name}:")
    print(buggy_report.witnesses[0].render())


if __name__ == "__main__":
    main()
